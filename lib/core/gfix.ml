module A = Minigo.Ast
module Alias = Goanalysis.Alias

(* GFix (paper §4): automated patching of BMOC bugs detected by GCatch.

   The dispatcher classifies each input bug and attempts the strategies in
   order of patch simplicity (§5.1): Strategy-I (increase the channel
   buffer from zero to one), then Strategy-II (defer the missed unblocking
   operation), then Strategy-III (add a stop channel and select on it).

   The problem scope matches the paper's (§4.1): two goroutines, one
   *local* channel; Go-B, the blocked goroutine, must be a child goroutine
   created by Go-A so its full behaviour is statically visible. *)

type strategy = S1_increase_buffer | S2_defer_op | S3_add_stop

let strategy_str = function
  | S1_increase_buffer -> "Strategy-I (increase buffer size)"
  | S2_defer_op -> "Strategy-II (defer channel operation)"
  | S3_add_stop -> "Strategy-III (add stop channel)"

type fix = {
  strategy : strategy;
  patched : A.program;
  changed_lines : int;
  description : string;
}

type outcome = Fixed of fix | Not_fixed of string

(* Information recovered about the buggy channel and its goroutines. *)
type site = {
  parent_fn : A.func_decl;
  chan_var : string;              (* channel variable name in the parent *)
  decl_loc : Minigo.Loc.t;        (* statement declaring the channel *)
  elem_type : A.typ;
  is_unbuffered : bool;
  child_body : A.block;           (* body of the goroutine literal *)
  child_chan_var : string;        (* channel name inside the child *)
  o2 : Report.blocked_op;
}

(* ---------------------------------------------------------- recovery *)

(* Find the statement in [fd] declaring a channel at [loc]; returns
   (variable, declaration loc, element type, unbuffered?). *)
let find_chan_decl (fd : A.func_decl) (loc : Minigo.Loc.t) =
  A.fold_stmts
    (fun acc s ->
      match acc with
      | Some _ -> acc
      | None -> (
          let mk x (t, cap) = Some (x, s.A.sloc, t, cap) in
          match s.A.s with
          | A.Define ([ x ], { e = A.MakeChan (t, cap); eloc })
            when Patch.same_line eloc loc ->
              mk x (t, cap)
          | A.Decl (x, _, Some { e = A.MakeChan (t, cap); eloc })
            when Patch.same_line eloc loc ->
              mk x (t, cap)
          | _ -> None))
    None fd.body
  |> Option.map (fun (x, sloc, t, cap) ->
         let unbuffered =
           match cap with None -> true | Some { A.e = A.Int 0; _ } -> true | _ -> false
         in
         (x, sloc, t, unbuffered))

(* Find the goroutine in [fd] whose body contains the blocked operation;
   returns the body and the channel's name inside it.  Handles both
   goroutine literals (Figure 1) and named-function goroutines like
   Figure 3's `go Start(stop)`. *)
let find_child (prog : A.program) (fd : A.func_decl) (chan_var : string)
    (o2 : Report.blocked_op) : (A.block * string) option =
  let loc = o2.bo_loc in
  A.fold_stmts
    (fun acc s ->
      match acc with
      | Some _ -> acc
      | None -> (
          match s.A.s with
          | A.GoFuncLit (params, body, args) ->
              if
                A.fold_stmts
                  (fun found st -> found || Patch.same_line st.A.sloc loc)
                  false body
              then begin
                (* if the channel is passed as an argument, use the bound
                   parameter name; otherwise it is captured by name *)
                let bound =
                  List.find_map
                    (fun ((p : A.param), (a : A.expr)) ->
                      match a.A.e with
                      | A.Ident x when x = chan_var -> Some p.pname
                      | _ -> None)
                    (List.combine params
                       (if List.length params = List.length args then args else []))
                in
                Some (body, Option.value bound ~default:chan_var)
              end
              else None
          | A.Go { callee = A.Fname g; args } when g = o2.bo_func -> (
              match A.find_func prog g with
              | Some child_fd ->
                  let bound =
                    List.find_map
                      (fun ((p : A.param), (a : A.expr)) ->
                        match a.A.e with
                        | A.Ident x when x = chan_var -> Some p.pname
                        | _ -> None)
                      (if List.length child_fd.params = List.length args then
                         List.combine child_fd.params args
                       else [])
                  in
                  Some (child_fd.body, Option.value bound ~default:chan_var)
              | None -> None)
          | _ -> None))
    None fd.body

(* How many goroutines (incl. the parent) access the channel? *)
let goroutines_accessing (fd : A.func_decl) (chan_var : string) : int =
  let child_count = ref 0 in
  A.iter_stmts
    (fun s ->
      match s.A.s with
      | A.GoFuncLit (params, body, args) ->
          let inner_name =
            List.find_map
              (fun ((p : A.param), (a : A.expr)) ->
                match a.A.e with
                | A.Ident x when x = chan_var -> Some p.pname
                | _ -> None)
              (if List.length params = List.length args then
                 List.combine params args
               else [])
          in
          let name = Option.value inner_name ~default:chan_var in
          if Patch.block_uses name body then incr child_count
      | A.Go c ->
          if List.exists (Patch.expr_uses chan_var) c.args then incr child_count
      | _ -> ())
    fd.body;
  1 + !child_count

let recover (prog : A.program) (bug : Report.bmoc_bug) : (site, string) result =
  match bug.blocked with
  | [ o2 ] -> (
      match bug.chan_loc with
      | None -> Error "channel has no static creation site"
      | Some cloc -> (
          match Patch.func_containing prog cloc with
          | None -> Error "cannot locate the function declaring the channel"
          | Some parent_fn -> (
              match find_chan_decl parent_fn cloc with
              | None -> Error "channel is not declared by a simple statement"
              | Some (chan_var, decl_loc, elem_type, is_unbuffered) -> (
                  (* Go-B must be a child goroutine (§4.1) *)
                  match find_child prog parent_fn chan_var o2 with
                  | None -> Error "the blocking goroutine is the parent"
                  | Some (child_body, child_chan_var) ->
                      if goroutines_accessing parent_fn chan_var > 2 then
                        Error "more than two goroutines access the channel"
                      else
                        Ok
                          {
                            parent_fn;
                            chan_var;
                            decl_loc;
                            elem_type;
                            is_unbuffered;
                            child_body;
                            child_chan_var;
                            o2;
                          }))))
  | [] -> Error "no blocking operation reported"
  | _ -> Error "bug involves more than two goroutines"

(* ------------------------------------------------------- strategies *)

(* Side effects after o2 in the child would escape Go-B (§4.2, step 4). *)
let side_effect_free_after (st : site) : bool =
  match Patch.stmts_after st.o2.bo_loc st.child_body with
  | None -> true (* o2 is the last statement of a nested block *)
  | Some rest -> List.for_all Patch.is_pure_exit rest

(* Strategy-I: single-sending bugs — Go-B performs exactly one send on an
   unbuffered channel; bump the buffer to one. *)
let try_s1 (prog : A.program) (st : site) : (A.program * string) option =
  if st.o2.bo_kind <> Report.Ksend then None
  else if not st.is_unbuffered then None
  else
    let ops = Patch.ops_on_chan st.child_chan_var st.child_body in
    let sends = List.filter (function Patch.Csend _ -> true | _ -> false) ops in
    if List.length ops <> 1 || List.length sends <> 1 then None
    else if Patch.in_loop_in_block st.o2.bo_loc st.child_body ~inside:false then None
    else if not (side_effect_free_after st) then None
    else
      let patched =
        Patch.rewrite_func prog st.parent_fn.fname (fun s ->
            if Minigo.Loc.equal s.A.sloc st.decl_loc then
              [
                {
                  s with
                  A.s =
                    (match s.A.s with
                    | A.Define (xs, ({ e = A.MakeChan (t, _); _ } as e)) ->
                        A.Define
                          (xs, { e with A.e = A.MakeChan (t, Some (A.mk_expr (A.Int 1))) })
                    | A.Decl (x, ty, Some ({ e = A.MakeChan (t, _); _ } as e)) ->
                        A.Decl
                          ( x,
                            ty,
                            Some
                              { e with A.e = A.MakeChan (t, Some (A.mk_expr (A.Int 1))) }
                          )
                    | other -> other);
                };
              ]
            else [ s ])
      in
      Some
        ( patched,
          Printf.sprintf "increase buffer of %s from 0 to 1 in %s" st.chan_var
            st.parent_fn.fname )

(* Parent-side operations on the channel (potential o1s). *)
let parent_ops (st : site) : Patch.chan_op_ast list =
  (* exclude statements inside goroutine literals: ops_on_chan descends
     into them, so filter by whether the op's loc is in the child body *)
  let in_child loc =
    A.fold_stmts
      (fun acc s -> acc || Minigo.Loc.equal s.A.sloc loc)
      false st.child_body
  in
  List.filter
    (fun op ->
      let loc =
        match op with
        | Patch.Csend s | Patch.Crecv s | Patch.Cclose s | Patch.Cselect_arm s ->
            s.A.sloc
      in
      not (in_child loc))
    (Patch.ops_on_chan st.chan_var st.parent_fn.body)

(* Can the parent exit before performing o1?  True when a Fatal-family
   call, panic, or return appears lexically before the last o1. *)
let parent_can_miss_o1 (st : site) (o1_locs : Minigo.Loc.t list) : bool =
  let last_o1_line =
    List.fold_left (fun m l -> max m (Minigo.Loc.line l)) 0 o1_locs
  in
  A.fold_stmts
    (fun acc s ->
      acc
      ||
      (Minigo.Loc.line s.A.sloc < last_o1_line
      &&
      match s.A.s with
      | A.Panic _ -> true
      | A.Return _ -> true
      | A.ExprStmt { e = A.Call { callee = A.Fmethod (_, m); _ }; _ } ->
          List.mem m [ "Fatal"; "Fatalf"; "FailNow" ]
      | _ -> false))
    false st.parent_fn.body

(* Strategy-II: missing-interaction bugs — defer the parent's o1 so it
   always runs (Figure 3). *)
let try_s2 (prog : A.program) (st : site) : (A.program * string) option =
  let ops = Patch.ops_on_chan st.child_chan_var st.child_body in
  if List.length ops <> 1 then None
  else if not (side_effect_free_after st) then None
  else
    let p_ops = parent_ops st in
    let sends =
      List.filter_map
        (function
          | Patch.Csend ({ A.s = A.Send (_, v); _ } as s) -> Some (s, v)
          | _ -> None)
        p_ops
    in
    let closes =
      List.filter_map (function Patch.Cclose s -> Some s | _ -> None) p_ops
    in
    let const_expr (e : A.expr) =
      match e.A.e with
      | A.Int _ | A.Bool _ | A.Str _ | A.Nil -> true
      | A.StructLit (_, []) -> true
      | _ -> false
    in
    let same_const =
      match sends with
      | (_, v0) :: _ ->
          List.for_all
            (fun (_, v) -> Minigo.Pretty.expr_str v = Minigo.Pretty.expr_str v0)
            sends
          && const_expr v0
      | [] -> false
    in
    let o1_locs =
      List.map (fun (s, _) -> s.A.sloc) sends
      @ List.map (fun (s : A.stmt) -> s.A.sloc) closes
    in
    if o1_locs = [] then None
    else if not (parent_can_miss_o1 st o1_locs) then None
    else
      let defer_stmt =
        if closes <> [] && sends = [] then
          A.mk_stmt (A.DeferStmt (A.DeferClose (A.mk_expr (A.Ident st.chan_var))))
        else if same_const then
          let v = snd (List.hd sends) in
          A.mk_stmt
            (A.DeferStmt (A.DeferSend (A.mk_expr (A.Ident st.chan_var), v)))
        else A.mk_stmt (A.Return []) (* sentinel: rejected below *)
      in
      (match defer_stmt.A.s with
      | A.Return _ -> None
      | _ ->
          let removed = List.map (fun l -> l) o1_locs in
          let patched =
            Patch.rewrite_func prog st.parent_fn.fname (fun s ->
                if Minigo.Loc.equal s.A.sloc st.decl_loc then [ s; defer_stmt ]
                else if List.exists (Minigo.Loc.equal s.A.sloc) removed then []
                else [ s ])
          in
          Some
            ( patched,
              Printf.sprintf "defer the %s on %s in %s"
                (if closes <> [] && sends = [] then "close" else "send")
                st.chan_var st.parent_fn.fname ))

(* Strategy-III: multiple-operations bugs — add a stop channel closed via
   defer in the parent; the child selects between its operation on c and
   receiving from stop (Figure 4). *)
let try_s3 (prog : A.program) (st : site) : (A.program * string) option =
  (* the child may operate on c many times (loops allowed); instructions
     after o2 may touch c but nothing else (§4.4) *)
  let stop = st.chan_var ^ "Stop" in
  let benign_after =
    match Patch.stmts_after st.o2.bo_loc st.child_body with
    | None -> true
    | Some rest ->
        List.for_all
          (fun (s : A.stmt) ->
            Patch.is_pure_exit s
            ||
            (* operations on c itself are allowed after o2 in §4.4 *)
            match s.A.s with
            | A.Send ({ e = A.Ident x; _ }, _) | A.CloseStmt { e = A.Ident x; _ }
              ->
                x = st.child_chan_var
            | A.ExprStmt { e = A.Recv { e = A.Ident x; _ }; _ } ->
                x = st.child_chan_var
            | _ -> false)
          rest
  in
  if not benign_after then None
  else
  match st.o2.bo_kind with
  | Report.Ksend ->
      (* replace each `c <- v` in the child with a select on c/stop *)
      let replaced = ref 0 in
      let patched =
        Patch.rewrite_func prog st.parent_fn.fname (fun s ->
            if Minigo.Loc.equal s.A.sloc st.decl_loc then
              [
                s;
                A.mk_stmt
                  (A.Define ([ stop ], A.mk_expr (A.MakeChan (A.Tbool, None))));
                A.mk_stmt (A.DeferStmt (A.DeferClose (A.mk_expr (A.Ident stop))));
              ]
            else
              match s.A.s with
              | A.Send (({ e = A.Ident x; _ } as ch), v)
                when x = st.child_chan_var
                     && A.fold_stmts
                          (fun acc c -> acc || Minigo.Loc.equal c.A.sloc s.A.sloc)
                          false st.child_body ->
                  incr replaced;
                  [
                    A.mk_stmt ~loc:s.A.sloc
                      (A.Select
                         ( [
                             A.CaseSend (ch, v, []);
                             A.CaseRecv
                               ( None,
                                 false,
                                 A.mk_expr (A.Ident stop),
                                 [ A.mk_stmt (A.Return []) ] );
                           ],
                           None ));
                  ]
              | _ -> [ s ])
      in
      if !replaced = 0 then None
      else
        Some
          ( patched,
            Printf.sprintf
              "add stop channel %s; child selects between %s and stop" stop
              st.chan_var )
  | _ -> None

(* --------------------------------------------------------- dispatcher *)

let dispatch (prog : A.program) (bug : Report.bmoc_bug) : outcome =
  match recover prog bug with
  | Error reason -> Not_fixed reason
  | Ok st -> (
      let before = Minigo.Pretty.program_str prog in
      let finish strategy (patched, description) =
        let after = Minigo.Pretty.program_str patched in
        Fixed
          {
            strategy;
            patched;
            changed_lines = Patch.changed_lines before after;
            description;
          }
      in
      match try_s1 prog st with
      | Some r -> finish S1_increase_buffer r
      | None -> (
          match try_s2 prog st with
          | Some r -> finish S2_defer_op r
          | None -> (
              match try_s3 prog st with
              | Some r -> finish S3_add_stop r
              | None ->
                  Not_fixed
                    (if not (side_effect_free_after st) then
                       "side effects after the blocking operation"
                     else "no applicable strategy"))))

(* Fix every fixable bug of an analysis; returns per-bug outcomes. *)
let fix_all (prog : A.program) (bugs : Report.bmoc_bug list) :
    (Report.bmoc_bug * outcome) list =
  let module M = Goobs.Metrics in
  List.map
    (fun bug ->
      Goobs.Trace.with_span ~name:"gfix.attempt" @@ fun () ->
      let o =
        if bug.Report.kind = Report.Chan_only then dispatch prog bug
        else Not_fixed "bug involves a mutex; out of GFix's scope"
      in
      M.incr (M.counter M.default "gfix.attempts");
      (match o with
      | Fixed f ->
          M.incr (M.counter M.default "gfix.fixed");
          Goobs.Trace.set_args [ ("strategy", strategy_str f.strategy) ]
      | Not_fixed reason ->
          M.incr (M.counter M.default "gfix.not_fixed");
          Goobs.Trace.set_args [ ("not_fixed", reason) ]);
      (bug, o))
    bugs

(* Apply a first round of outcomes, then — when several bugs share one
   program — re-detect and re-fix against the accumulated program until
   a fixpoint, so patches compose.  Re-detection reuses the already
   type-checked AST: only lowering and BMOC detection run per round. *)
let fix_to_fixpoint ?(max_rounds = 8) (prog : A.program)
    (fixes : (Report.bmoc_bug * outcome) list) : A.program =
  let apply p outcomes =
    List.fold_left
      (fun acc (_, o) ->
        match o with Fixed f -> f.patched | Not_fixed _ -> acc)
      p outcomes
  in
  let patched = apply prog fixes in
  if List.length fixes <= 1 then patched
  else
    let rec iterate cur rounds =
      if rounds = 0 then cur
      else
        let ir = Goir.Lower.lower_program cur in
        let bugs, _ = Bmoc.detect ir in
        let round = fix_all cur bugs in
        let progress =
          List.exists (fun (_, o) -> match o with Fixed _ -> true | _ -> false)
            round
        in
        if progress then iterate (apply cur round) (rounds - 1) else cur
    in
    iterate prog max_rounds
