(** The five traditional checkers (paper §3.5): missing unlock, double
    lock, conflicting lock order, racy struct fields (lockset), and
    testing.Fatal called from a child goroutine.

    Every checker walks functions independently; passing [pool] fans the
    per-function walks out across domains.  Results are merged back in
    function order, so output is identical for jobs=1 and jobs=N. *)

val detect :
  ?pool:Goengine.Pool.t -> Goir.Ir.program -> Report.trad_bug list
(** Run all five checkers, computing alias facts, the call graph, and
    the primitive map internally. *)

(** The individual checkers, taking pre-computed facts so a staged
    engine can share one alias/callgraph/primitive computation across
    all of them (each is registered as its own engine pass).

    [metrics] arms the per-function fault boundary: a function whose
    walk raises (or that would start under watchdog pressure) is dropped
    from the result and accounted as degraded/skipped in the registry's
    "health.*" counters, instead of aborting the checker.  Without it
    the walks run bare, as the legacy [detect] entry point expects. *)

val check_missing_unlock :
  ?pool:Goengine.Pool.t ->
  ?metrics:Goobs.Metrics.t ->
  Primitives.t ->
  Goanalysis.Alias.t ->
  Goir.Ir.program ->
  Report.trad_bug list

val check_double_lock :
  ?pool:Goengine.Pool.t ->
  ?metrics:Goobs.Metrics.t ->
  Primitives.t ->
  Goanalysis.Alias.t ->
  Goanalysis.Callgraph.t ->
  Goir.Ir.program ->
  Report.trad_bug list

val check_conflicting_order :
  ?pool:Goengine.Pool.t ->
  ?metrics:Goobs.Metrics.t ->
  Primitives.t ->
  Goanalysis.Alias.t ->
  Goir.Ir.program ->
  Report.trad_bug list

val check_field_race :
  ?pool:Goengine.Pool.t ->
  ?metrics:Goobs.Metrics.t ->
  Primitives.t ->
  Goanalysis.Alias.t ->
  Goir.Ir.program ->
  Report.trad_bug list

val check_fatal_in_child :
  ?pool:Goengine.Pool.t ->
  ?metrics:Goobs.Metrics.t ->
  Goir.Ir.program ->
  Report.trad_bug list
