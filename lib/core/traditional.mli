(** The five traditional checkers (paper §3.5): missing unlock, double
    lock, conflicting lock order, racy struct fields (lockset), and
    testing.Fatal called from a child goroutine. *)

val detect : Goir.Ir.program -> Report.trad_bug list
(** Run all five checkers, computing alias facts, the call graph, and
    the primitive map internally. *)

(** The individual checkers, taking pre-computed facts so a staged
    engine can share one alias/callgraph/primitive computation across
    all of them (each is registered as its own engine pass). *)

val check_missing_unlock :
  Primitives.t -> Goanalysis.Alias.t -> Goir.Ir.program -> Report.trad_bug list

val check_double_lock :
  Primitives.t ->
  Goanalysis.Alias.t ->
  Goanalysis.Callgraph.t ->
  Goir.Ir.program ->
  Report.trad_bug list

val check_conflicting_order :
  Primitives.t -> Goanalysis.Alias.t -> Goir.Ir.program -> Report.trad_bug list

val check_field_race :
  Primitives.t -> Goanalysis.Alias.t -> Goir.Ir.program -> Report.trad_bug list

val check_fatal_in_child : Goir.Ir.program -> Report.trad_bug list
