(** The five traditional checkers (paper §3.5): missing unlock, double
    lock, conflicting lock order, racy struct fields (lockset), and
    testing.Fatal called from a child goroutine.

    Every checker walks functions independently; passing [pool] fans the
    per-function walks out across domains.  Results are merged back in
    function order, so output is identical for jobs=1 and jobs=N. *)

val detect :
  ?pool:Goengine.Pool.t -> Goir.Ir.program -> Report.trad_bug list
(** Run all five checkers, computing alias facts, the call graph, and
    the primitive map internally. *)

(** The individual checkers, taking pre-computed facts so a staged
    engine can share one alias/callgraph/primitive computation across
    all of them (each is registered as its own engine pass). *)

val check_missing_unlock :
  ?pool:Goengine.Pool.t ->
  Primitives.t ->
  Goanalysis.Alias.t ->
  Goir.Ir.program ->
  Report.trad_bug list

val check_double_lock :
  ?pool:Goengine.Pool.t ->
  Primitives.t ->
  Goanalysis.Alias.t ->
  Goanalysis.Callgraph.t ->
  Goir.Ir.program ->
  Report.trad_bug list

val check_conflicting_order :
  ?pool:Goengine.Pool.t ->
  Primitives.t ->
  Goanalysis.Alias.t ->
  Goir.Ir.program ->
  Report.trad_bug list

val check_field_race :
  ?pool:Goengine.Pool.t ->
  Primitives.t ->
  Goanalysis.Alias.t ->
  Goir.Ir.program ->
  Report.trad_bug list

val check_fatal_in_child :
  ?pool:Goengine.Pool.t -> Goir.Ir.program -> Report.trad_bug list
