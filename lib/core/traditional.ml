module Ir = Goir.Ir
module Alias = Goanalysis.Alias
module Callgraph = Goanalysis.Callgraph
module Pool = Goengine.Pool

(* The five traditional checkers (paper §3.5): ideas that work in classic
   languages, ported to Go IR.

   1. missing unlock   — a path from a Lock to a function exit with no
                         matching Unlock (intra-procedural, path-sensitive);
   2. double lock      — re-acquiring a mutex already held, including via
                         calls (inter-procedural with function summaries);
   3. conflicting lock — a cycle in the program-wide lock-order graph;
   4. struct-field race— lockset: a field protected by a mutex on most
                         accesses but not all, with goroutines involved;
   5. Fatal in child   — testing.T's Fatal family called from a goroutine
                         other than the one running the test function. *)

type lockset = Alias.obj list

(* Per-function fault boundary shared by every checker: a function whose
   walk raises — or that would start under watchdog pressure — simply
   contributes no bugs, counted in the health ledger; its siblings are
   unaffected.  [metrics] counters are atomic, so pool workers account
   directly.  Without a registry (the legacy [detect] entry point) the
   walk runs bare, exactly as before. *)
let guarded ?metrics ~checker (f : Ir.func) (work : unit -> 'a list) : 'a list
    =
  match metrics with
  | None -> work ()
  | Some reg -> (
      match
        Goengine.Supervise.checked ~metrics:reg
          ~unit_name:(checker ^ " func " ^ f.Ir.name)
          work
      with
      | Ok bugs -> bugs
      | Error (`Degraded _ | `Skipped _) -> [])

let place_objs alias fname p =
  Alias.ObjSet.elements (Alias.objects_of_place alias fname p)

let mutex_objs prims alias fname p =
  List.filter
    (fun o ->
      match Primitives.kind_of prims o with
      | Some Primitives.Pmutex -> true
      | _ -> false)
    (place_objs alias fname p)

(* Bounded path walk of one function, threading a lockset.  [visit] is
   called on every (instruction, lockset-before); [at_exit] on every
   function exit with the final lockset. *)
let walk_paths ?(loop_bound = 1) (f : Ir.func)
    ~(transfer : Ir.inst -> lockset -> lockset)
    ~(visit : Ir.inst -> lockset -> unit) ~(at_exit : lockset -> Ir.terminator -> unit) : unit =
  let visits = Hashtbl.create 8 in
  let rec go bid (ls : lockset) depth =
    if depth > 4000 then ()
    else
      let count = Option.value (Hashtbl.find_opt visits bid) ~default:0 in
      if count > loop_bound then ()
      else begin
        Hashtbl.replace visits bid (count + 1);
        let b = Ir.block f bid in
        let ls =
          List.fold_left
            (fun ls i ->
              visit i ls;
              transfer i ls)
            ls b.insts
        in
        (match Ir.successors b with
        | [] -> at_exit ls b.term
        | succs -> List.iter (fun s -> go s ls (depth + 1)) succs);
        Hashtbl.replace visits bid count
      end
  in
  go f.entry [] 0

let lock_transfer prims alias fname (i : Ir.inst) (ls : lockset) : lockset =
  match i.idesc with
  | Ilock p -> mutex_objs prims alias fname p @ ls
  | Iunlock p ->
      let objs = mutex_objs prims alias fname p in
      (* release one instance of each unlocked mutex *)
      List.fold_left
        (fun ls o ->
          let rec remove_one = function
            | [] -> []
            | x :: rest -> if x = o then rest else x :: remove_one rest
          in
          remove_one ls)
        ls objs
  | _ -> ls

(* ------------------------------------------ 1. missing unlock ------- *)

(* Each checker walks functions independently; [pool] fans the walks out
   across domains.  Per-function results are merged back *in function
   order*, so the bug list is identical for jobs=1 and jobs=N. *)
let check_missing_unlock ?(pool = Pool.sequential) ?metrics prims alias
    (prog : Ir.program) : Report.trad_bug list =
  List.concat
  @@ Pool.map ~pool
    (fun (f : Ir.func) ->
      guarded ?metrics ~checker:"trad.missing-unlock" f @@ fun () ->
      let bugs = ref [] in
      let reported = Hashtbl.create 4 in
      walk_paths f
        ~transfer:(lock_transfer prims alias f.name)
        ~visit:(fun _ _ -> ())
        ~at_exit:(fun ls term ->
          (* a panic exit aborts the goroutine anyway; returns should not
             hold locks *)
          match (term, ls) with
          | Ir.Treturn _, _ :: _ ->
              List.iter
                (fun o ->
                  if not (Hashtbl.mem reported o) then begin
                    Hashtbl.add reported o ();
                    bugs :=
                      {
                        Report.tkind = Report.Forget_unlock;
                        tfunc = f.name;
                        tloc = f.floc;
                        tdetail =
                          Printf.sprintf "%s still held at return" (Alias.obj_str o);
                      }
                      :: !bugs
                  end)
                ls
          | _ -> ());
      List.rev !bugs)
    (Ir.funcs_list prog)

(* ------------------------------------------ 2. double lock ---------- *)

(* Summary: mutexes a function may lock (itself or transitively) without
   first unlocking them. *)
let locks_summary prims alias cg (prog : Ir.program) :
    (string, Alias.obj list) Hashtbl.t =
  let summary = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      let acc = ref [] in
      Ir.iter_insts
        (fun i ->
          match i.idesc with
          | Ilock p ->
              acc := mutex_objs prims alias f.name p @ !acc
          | _ -> ())
        f;
      Hashtbl.replace summary f.name (List.sort_uniq compare !acc))
    (Ir.funcs_list prog);
  (* propagate through calls to a fixpoint *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Ir.func) ->
        let cur = Option.value (Hashtbl.find_opt summary f.name) ~default:[] in
        let extra =
          List.concat_map
            (fun (e : Callgraph.edge) ->
              if e.kind = Callgraph.Ecall && not e.ambiguous then
                Option.value (Hashtbl.find_opt summary e.callee) ~default:[]
              else [])
            (Callgraph.callees cg f.name)
        in
        let next = List.sort_uniq compare (extra @ cur) in
        if List.length next <> List.length cur then begin
          Hashtbl.replace summary f.name next;
          changed := true
        end)
      (Ir.funcs_list prog)
  done;
  summary

let check_double_lock ?(pool = Pool.sequential) ?metrics prims alias cg
    (prog : Ir.program) : Report.trad_bug list =
  (* the call summary is a shared fixpoint: computed once, sequentially *)
  let summary = locks_summary prims alias cg prog in
  List.concat
  @@ Pool.map ~pool
    (fun (f : Ir.func) ->
      guarded ?metrics ~checker:"trad.double-lock" f @@ fun () ->
      let bugs = ref [] in
      let reported = Hashtbl.create 4 in
      let report loc detail key =
        if not (Hashtbl.mem reported key) then begin
          Hashtbl.add reported key ();
          bugs :=
            { Report.tkind = Report.Double_lock; tfunc = f.name; tloc = loc; tdetail = detail }
            :: !bugs
        end
      in
      walk_paths f
        ~transfer:(lock_transfer prims alias f.name)
        ~visit:(fun i ls ->
          match i.idesc with
          | Ilock p ->
              List.iter
                (fun o ->
                  if List.mem o ls then
                    report i.iloc
                      (Printf.sprintf "re-acquires %s already held" (Alias.obj_str o))
                      ("direct", o, i.ipp))
                (mutex_objs prims alias f.name p)
          | Icall (_, g, _) when ls <> [] -> (
              match Hashtbl.find_opt summary g with
              | Some glocks ->
                  List.iter
                    (fun o ->
                      if List.mem o ls then
                        report i.iloc
                          (Printf.sprintf "calls %s which locks %s already held" g
                             (Alias.obj_str o))
                          ("call", o, i.ipp))
                    glocks
              | None -> ())
          | _ -> ())
        ~at_exit:(fun _ _ -> ());
      List.rev !bugs)
    (Ir.funcs_list prog)

(* --------------------------------- 3. conflicting lock order -------- *)

let check_conflicting_order ?(pool = Pool.sequential) ?metrics prims alias
    (prog : Ir.program) : Report.trad_bug list =
  (* collect lock-order edges (m1 held while acquiring m2), one list per
     function, in walk order *)
  let per_func =
    Pool.map ~pool
      (fun (f : Ir.func) ->
        guarded ?metrics ~checker:"trad.lock-order" f @@ fun () ->
        let found = ref [] in
        walk_paths f
          ~transfer:(lock_transfer prims alias f.name)
          ~visit:(fun i ls ->
            match i.idesc with
            | Ilock p ->
                List.iter
                  (fun m2 ->
                    List.iter
                      (fun m1 ->
                        if m1 <> m2 then
                          found := ((m1, m2), (f.name, i.iloc)) :: !found)
                      ls)
                  (mutex_objs prims alias f.name p)
            | _ -> ())
          ~at_exit:(fun _ _ -> ());
        List.rev !found)
      (Ir.funcs_list prog)
  in
  (* merge in function order: the hash tables see the same insertion
     sequence as a sequential walk, so the report below is identical *)
  let edges = Hashtbl.create 16 in
  let edge_loc = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (e, at) ->
         Hashtbl.replace edges e ();
         if not (Hashtbl.mem edge_loc e) then Hashtbl.replace edge_loc e at))
    per_func;
  (* 2-cycles (the common conflicting-order deadlock) *)
  let bugs = ref [] in
  Hashtbl.iter
    (fun (m1, m2) () ->
      if compare m1 m2 < 0 && Hashtbl.mem edges (m2, m1) then
        let fname, loc =
          match Hashtbl.find_opt edge_loc (m1, m2) with
          | Some fl -> fl
          | None -> ("?", Minigo.Loc.none)
        in
        bugs :=
          {
            Report.tkind = Report.Conflict_lock;
            tfunc = fname;
            tloc = loc;
            tdetail =
              Printf.sprintf "%s -> %s and %s -> %s" (Alias.obj_str m1)
                (Alias.obj_str m2) (Alias.obj_str m2) (Alias.obj_str m1);
          }
          :: !bugs)
    edges;
  List.rev !bugs

(* ------------------------------------ 4. struct-field race ---------- *)

type access = {
  a_func : string;
  a_loc : Minigo.Loc.t;
  a_lockset : lockset;
  a_is_write : bool;
}

let check_field_race ?(pool = Pool.sequential) ?metrics prims alias
    (prog : Ir.program) : Report.trad_bug list =
  (* function allocating each struct object: accesses there are treated as
     construction/initialisation, not racy sharing *)
  let alloc_func : (Ir.pp, string) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      Ir.iter_insts
        (fun i ->
          match i.idesc with
          | Imake_struct (_, _) -> Hashtbl.replace alloc_func i.ipp f.name
          | _ -> ())
        f)
    (Ir.funcs_list prog);
  let is_constructor_access f = function
    | Alias.Astruct pp -> Hashtbl.find_opt alloc_func pp = Some f
    | _ -> false
  in
  (* per-function access lists in walk order, merged below *)
  let per_func =
    Pool.map ~pool
      (fun (f : Ir.func) ->
        guarded ?metrics ~checker:"trad.field-race" f @@ fun () ->
        let found = ref [] in
        let record fn loc ls base fld is_write =
          List.iter
            (fun obj ->
              match obj with
              | Alias.Astruct _ | Alias.Aext _
                when not (is_constructor_access fn obj) ->
                  found :=
                    ( (obj, fld),
                      { a_func = fn; a_loc = loc; a_lockset = ls; a_is_write = is_write } )
                    :: !found
              | _ -> ())
            base
        in
        walk_paths f
          ~transfer:(lock_transfer prims alias f.name)
          ~visit:(fun i ls ->
            match i.idesc with
            | Ifield_load (_, b, fld) when fld <> "$done" && fld <> "$elem" ->
                record f.name i.iloc ls (place_objs alias f.name (Ir.Pvar b)) fld false
            | Ifield_store (b, fld, _) when fld <> "$done" && fld <> "$elem" ->
                record f.name i.iloc ls (place_objs alias f.name (Ir.Pvar b)) fld true
            | _ -> ())
          ~at_exit:(fun _ _ -> ());
        List.rev !found)
      (Ir.funcs_list prog)
  in
  (* accesses.(struct obj, field) -> access list; merging in function
     order reproduces the sequential insertion sequence exactly *)
  let accesses : (Alias.obj * string, access list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (List.iter (fun (key, a) ->
         let cur = Option.value (Hashtbl.find_opt accesses key) ~default:[] in
         Hashtbl.replace accesses key (a :: cur)))
    per_func;
  (* a field is suspicious when most accesses hold a common lock but some
     access does not, with at least one write and 2+ functions involved *)
  let bugs = ref [] in
  Hashtbl.iter
    (fun ((obj : Alias.obj), fld) accs ->
      let n = List.length accs in
      if n >= 3 then begin
        let locked = List.filter (fun a -> a.a_lockset <> []) accs in
        let unlocked = List.filter (fun a -> a.a_lockset = []) accs in
        let has_write = List.exists (fun a -> a.a_is_write) accs in
        if
          has_write
          && List.length locked * 2 > n (* majority protected *)
          && unlocked <> []
          && List.length (List.sort_uniq compare (List.map (fun a -> a.a_func) accs)) >= 2
        then
          List.iter
            (fun a ->
              bugs :=
                {
                  Report.tkind = Report.Struct_field_race;
                  tfunc = a.a_func;
                  tloc = a.a_loc;
                  tdetail =
                    Printf.sprintf "field %s of %s accessed without the usual lock" fld
                      (Alias.obj_str obj);
                }
                :: !bugs)
            unlocked
      end)
    accesses;
  List.rev !bugs

(* ------------------------------------ 5. Fatal in child ------------- *)

let check_fatal_in_child ?(pool = Pool.sequential) ?metrics (prog : Ir.program)
    : Report.trad_bug list =
  List.concat
  @@ Pool.map ~pool
    (fun (f : Ir.func) ->
      guarded ?metrics ~checker:"trad.fatal-child" f @@ fun () ->
      let bugs = ref [] in
      if f.is_goroutine_body then
        Ir.iter_insts
          (fun i ->
            match i.idesc with
            | Itesting_fatal m ->
                bugs :=
                  {
                    Report.tkind = Report.Fatal_in_child;
                    tfunc = f.name;
                    tloc = i.iloc;
                    tdetail = Printf.sprintf "t.%s called from a child goroutine" m;
                  }
                  :: !bugs
            | _ -> ())
          f;
      List.rev !bugs)
    (Ir.funcs_list prog)

(* --------------------------------------------------- all together --- *)

let detect ?pool (prog : Ir.program) : Report.trad_bug list =
  let alias = Alias.analyse prog in
  let cg = Callgraph.build ~alias prog in
  let prims = Primitives.collect prog alias in
  check_missing_unlock ?pool prims alias prog
  @ check_double_lock ?pool prims alias cg prog
  @ check_conflicting_order ?pool prims alias prog
  @ check_field_race ?pool prims alias prog
  @ check_fatal_in_child ?pool prog
