(** Compatibility shim over the staged analysis engine
    ({!Goengine.Engine}): the classic GCatch pipeline API — source text
    → parse → type check → lower → BMOC detector + traditional
    detectors → reports — with compilation served from a process-wide
    artifact cache, so repeated analyses of the same source set
    parse/typecheck/lower exactly once. *)

type analysis = {
  source : Minigo.Ast.program;
  ir : Goir.Ir.program;
  bmoc : Report.bmoc_bug list;
  trad : Report.trad_bug list;
  stats : Bmoc.stats;
  elapsed_s : float;
}

val compile_sources :
  name:string -> string list -> Minigo.Ast.program * Goir.Ir.program
(** Parse, type-check, and lower without running the detectors.
    @raise Minigo.Parser.Parse_error and {!Minigo.Typecheck.Type_error}. *)

val analyse_ir :
  ?cfg:Bmoc.config ->
  ?pool:Goengine.Pool.t ->
  Minigo.Ast.program ->
  Goir.Ir.program ->
  analysis
(** [pool] fans the per-channel / per-function detector work out across
    its domains; output is identical to a sequential run. *)

val analyse_with :
  Goengine.Engine.t ->
  ?cfg:Bmoc.config ->
  name:string ->
  string list ->
  analysis
(** Like {!analyse} but compiling through the caller's engine, so a
    batch driver (bench, the CLIs) controls the artifact cache
    lifetime and shares it with registry-based passes. *)

val analyse :
  ?cfg:Bmoc.config -> ?jobs:int -> name:string -> string list -> analysis
(** Run the full pipeline over source texts.  [jobs] (default 1) sizes
    the shared domain pool used by the detectors. *)

val analyse_string : ?cfg:Bmoc.config -> string -> analysis
(** Convenience wrapper for a single source string. *)

val print_reports : analysis -> unit
