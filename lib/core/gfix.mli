(** GFix (paper §4): automated patching of BMOC bugs detected by GCatch.

    The dispatcher classifies each input bug and attempts the strategies
    in order of patch simplicity: Strategy-I (increase the channel buffer
    from zero to one), Strategy-II (defer the missed unblocking
    operation), Strategy-III (add a stop channel the child selects on).

    The problem scope matches the paper's (§4.1): two goroutines, one
    local channel, and the blocked goroutine must be a child created by
    the other so its behaviour is statically visible. *)

type strategy = S1_increase_buffer | S2_defer_op | S3_add_stop

val strategy_str : strategy -> string

type fix = {
  strategy : strategy;
  patched : Minigo.Ast.program;   (** the rewritten program *)
  changed_lines : int;            (** the paper's readability metric *)
  description : string;
}

type outcome = Fixed of fix | Not_fixed of string  (** rejection reason *)

val dispatch : Minigo.Ast.program -> Report.bmoc_bug -> outcome
(** Attempt to fix one bug, trying Strategy-I, then II, then III. *)

val fix_all :
  Minigo.Ast.program ->
  Report.bmoc_bug list ->
  (Report.bmoc_bug * outcome) list
(** Fix every fixable bug; mutex-involved bugs are skipped, like the
    paper's GFix, whose scope is channel-only bugs. *)

val fix_to_fixpoint :
  ?max_rounds:int ->
  Minigo.Ast.program ->
  (Report.bmoc_bug * outcome) list ->
  Minigo.Ast.program
(** Apply the outcomes of a first {!fix_all} round; when more than one
    fix landed, iteratively re-detect and re-fix against the
    accumulated program (up to [max_rounds], default 8) so multiple
    bugs in one file compose.  Formerly open-coded in [gfix_cli]. *)
