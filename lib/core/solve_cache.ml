module M = Goobs.Metrics
module Trace = Goobs.Trace

(* Content-addressed cache of per-channel BMOC verdicts (the PR-4 engine
   tier).

   The key is a fingerprint — a digest of the *canonical per-channel
   problem*: the channel's identity and configuration, the scope, the
   feasibility-filtered (and, when enabled, deduplicated) path
   combinations, the kind/buffer/Pset facts of every primitive those
   combinations mention, and every detector knob that can change a
   verdict.  Anything that could alter the bug list is folded into the
   key, so invalidation is automatic: change the source, the config, or
   the detector version and the fingerprint changes with them.  Stale
   entries are never *wrong*, merely unreachable.

   Two tiers:
   - an in-process table, shared by every run in the process (bench
     loops, repeated [analyse] calls, the jobs=1-then-jobs=4 test);
   - an optional on-disk tier ([GCATCH_CACHE_DIR] / [--cache-dir]), one
     file per fingerprint, written atomically (temp file + rename) and
     integrity-checked on read — a corrupted or truncated entry is
     treated as a miss and unlinked, never an error.

   The entry stores the channel's bug list *and* its per-channel counter
   snapshot, so a hit replays the exact metrics of the original solve:
   warm and cold runs produce byte-identical diagnostics and identical
   run-registry counters.  Channels whose solve was cut short by the
   per-channel budget must never be stored (their result embeds a
   wall-clock accident); callers pass those with [store = false].

   Hit/miss counters live in the process-wide registry (deliberately not
   the run registry: a warm run's counters differ from a cold run's, and
   run-level metrics must stay byte-identical). *)

type entry = {
  e_bugs : Report.bmoc_bug list;
  e_stats : (string * int) list; (* per-channel counter snapshot *)
}

let format_version = "gcatch-solve-cache/1"

(* Canonical fingerprint of any marshalable value: MD5 of its
   [No_sharing] representation.  [No_sharing] makes the bytes depend
   only on the structural value, not on how much physical sharing the
   builder happened to create. *)
let fingerprint (v : 'a) : string =
  Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.No_sharing ]))

(* ------------------------------------------------- in-memory tier --- *)

(* The memory tier is a promise-keyed memo rather than a plain table:
   when several domains race on the same fingerprint, the first claims it
   and the rest *wait* instead of solving the same problem twice.  Beyond
   the wasted work, this is what keeps the hit/miss counters
   schedule-independent — a fixed problem set produces exactly one miss
   per distinct fingerprint at any [--jobs] setting. *)
let mem : entry Goengine.Memo.t = Goengine.Memo.create ()
let reset_memory () = Goengine.Memo.reset mem

(* A long-lived server bounds the memory tier; evictions are counted in
   the process registry (like hit/miss — a warm run's counters already
   differ from a cold run's).  [mb <= 0] removes the bound. *)
let c_evict = lazy (M.counter M.default "bmoc.solve_cache_evictions")

let set_memory_budget_mb mb =
  let on_evict n = M.add (Lazy.force c_evict) n in
  Goengine.Memo.set_budget ~on_evict mem ~bytes:(mb * 1024 * 1024)

let memory_bytes () = Goengine.Memo.used_bytes mem

(* Snapshot hooks for the serving layer: the memory tier as a sorted
   (fingerprint, entry) list.  Entries are plain data (the disk tier
   already marshals them), so a snapshot can carry them verbatim. *)
let export_memory () : (string * entry) list = Goengine.Memo.export mem
let import_memory (entries : (string * entry) list) =
  Goengine.Memo.import mem entries

(* ---------------------------------------------------- on-disk tier --- *)

(* Disk-tier health.  Every disk access is best-effort: an I/O error is
   counted, never raised.  When the cache directory itself disappears
   mid-run (a concurrent `rm -rf`, an unmounted tmpfs), the whole tier
   degrades to memory-only with ONE warning — per-entry errors against a
   gone directory would only repeat the same news hundreds of times.
   Cache degradations are reported through these process-wide counters
   and that single warning, deliberately *not* through the per-run
   health ledger: warm and cold runs must keep byte-identical run-level
   metrics. *)
let disk_enabled = Atomic.make true

let c_read_error = lazy (M.counter M.default "bmoc.solve_cache_read_error")
let c_write_error = lazy (M.counter M.default "bmoc.solve_cache_write_error")

let disable_disk dir =
  if Atomic.compare_and_set disk_enabled true false then
    Goobs.Log.warn
      ~kv:[ ("dir", dir) ]
      "solve-cache directory unavailable; continuing memory-only"

(* Tests re-arm the disk tier between scenarios. *)
let reset_disk_state () = Atomic.set disk_enabled true

(* A vanished directory (as opposed to a bad entry) is what flips the
   tier off; [mkdir] reinstates it when the parent still exists. *)
let dir_usable dir =
  Sys.file_exists dir
  || match Unix.mkdir dir 0o755 with
     | () -> true
     | exception Unix.Unix_error (Unix.EEXIST, _, _) -> true
     | exception _ -> false

let disk_file dir fp = Filename.concat dir ("gcatch-" ^ fp ^ ".solve")

(* payload = digest(body) ^ body, body = Marshal(version, fp, entry) *)
let disk_read dir fp : entry option =
  (match Goengine.Faults.fire ~site:"cache.read" ~key:fp () with
  | None -> ()
  | Some Goengine.Faults.Stall ->
      Goengine.Pool.sleep_yielding Goengine.Faults.stall_s
  | Some _ -> raise (Goengine.Faults.Injected ("cache.read", fp)));
  let path = disk_file dir fp in
  match open_in_bin path with
  | exception Sys_error _ -> None (* no entry *)
  | ic ->
      let r =
        match
          let n = in_channel_length ic in
          if n < 16 then None
          else begin
            let digest = really_input_string ic 16 in
            let body = really_input_string ic (n - 16) in
            if Digest.string body <> digest then None
            else
              let v, fp', e =
                (Marshal.from_string body 0 : string * string * entry)
              in
              if v = format_version && fp' = fp then Some e else None
          end
        with
        | r -> r
        | exception _ -> None
      in
      close_in_noerr ic;
      (match r with
      | Some _ -> ()
      | None ->
          (* corrupted, truncated, or stale format: drop the file so it
             is rebuilt on the next store; the lookup is a plain miss.
             The unlink itself is best-effort — another process may have
             dropped the same corrupt entry a beat earlier. *)
          (try Sys.remove path with _ -> ()));
      r

(* [disk_read] with the fault boundary: any failure is a miss, counted
   once, and a vanished directory retires the tier. *)
let checked_read dir fp : entry option =
  if not (Atomic.get disk_enabled) then None
  else begin
    (* yield around the blocking syscalls: a scheduled task reading the
       disk tier gives other tasks a turn before and after the I/O *)
    Goengine.Pool.yield ();
    let r =
      try disk_read dir fp
      with _ ->
        M.incr (Lazy.force c_read_error);
        if not (dir_usable dir) then disable_disk dir;
        None
    in
    Goengine.Pool.yield ();
    r
  end

let disk_write dir fp (e : entry) : unit =
  (match Goengine.Faults.fire ~site:"cache.write" ~key:fp () with
  | None -> ()
  | Some Goengine.Faults.Stall ->
      Goengine.Pool.sleep_yielding Goengine.Faults.stall_s
  | Some _ -> raise (Goengine.Faults.Injected ("cache.write", fp)));
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let body = Marshal.to_string (format_version, fp, e) [ Marshal.No_sharing ] in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".gcatch-%s.%d.tmp" fp (Unix.getpid ()))
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Digest.string body);
      output_string oc body);
  match Sys.rename tmp (disk_file dir fp) with
  | () -> ()
  | exception e ->
      (* rename lost a race (concurrent unlink of the target's directory
         entry, or the dir itself): drop the temp file and re-raise so
         [checked_write] accounts for it *)
      (try Sys.remove tmp with _ -> ());
      raise e

(* [disk_write] with the fault boundary: a cache store never fails the
   analysis. *)
let checked_write dir fp (e : entry) : unit =
  if Atomic.get disk_enabled then begin
    (* as in [checked_read]: bracket the blocking I/O with yields *)
    Goengine.Pool.yield ();
    (try disk_write dir fp e
     with _ ->
       M.incr (Lazy.force c_write_error);
       if not (dir_usable dir) then disable_disk dir);
    Goengine.Pool.yield ()
  end

(* -------------------------------------------------------- frontend --- *)

let c_hit = lazy (M.counter M.default "bmoc.solve_cache_hit")
let c_miss = lazy (M.counter M.default "bmoc.solve_cache_miss")
let c_disk_hit = lazy (M.counter M.default "bmoc.solve_cache_disk_hit")
let c_store = lazy (M.counter M.default "bmoc.solve_cache_store")

(* Serve [fp] from the memory tier, then the disk tier, then by running
   [compute].  [compute] returns [(entry, store)]; [store = false] marks
   a result that must not be cached (a budget-truncated solve) — it is
   returned to this caller but the slot is released.  Returns the entry
   plus [true] when it came from a cache tier. *)
(* One journal event per lookup outcome — a miss's store outcome rides
   on the miss event as a "stored" flag rather than a second event, so
   the hot solve path journals once.  The memory tier's exactly-once
   claim makes the event multiset a function of the problem set alone
   (storedness is a property of the solve, not the schedule), so
   journals diff clean across --jobs. *)
let journal_solve ~event ?from ?stored fp =
  if Goobs.Journal.enabled () then
    Goobs.Journal.emit ~event
      (("fp", Goobs.Journal.S (String.sub fp 0 (min 12 (String.length fp))))
      :: (match from with
         | Some f -> [ ("from", Goobs.Journal.S f) ]
         | None -> [])
      @ (match stored with
        | Some b -> [ ("stored", Goobs.Journal.B b) ]
        | None -> []))

let find_or_compute ?dir (fp : string) (compute : unit -> entry * bool) :
    entry * bool =
  let from_disk = ref false in
  let stored = ref false in
  match
    Goengine.Memo.find_or_compute mem fp (fun () ->
        match
          match dir with
          | None -> None
          | Some d ->
              Trace.with_span ~name:"bmoc.cache.lookup" (fun () ->
                  checked_read d fp)
        with
        | Some e ->
            from_disk := true;
            (e, true)
        | None ->
            let e, store = compute () in
            if store then begin
              M.incr (Lazy.force c_store);
              stored := true;
              match dir with
              | None -> ()
              | Some d ->
                  Trace.with_span ~name:"bmoc.cache.store" (fun () ->
                      checked_write d fp e)
            end;
            (e, store))
  with
  | `Hit e ->
      M.incr (Lazy.force c_hit);
      journal_solve ~event:"solve.hit" ~from:"mem" fp;
      (e, true)
  | `Computed e when !from_disk ->
      M.incr (Lazy.force c_hit);
      M.incr (Lazy.force c_disk_hit);
      journal_solve ~event:"solve.hit" ~from:"disk" fp;
      (e, true)
  | `Computed e ->
      M.incr (Lazy.force c_miss);
      journal_solve ~event:"solve.miss" ~stored:!stored fp;
      (e, false)
