module Ir = Goir.Ir
module Alias = Goanalysis.Alias
module E = Gosmt.Expr
module Solver = Gosmt.Solver

(* The channel constraint system (paper §3.4).

   Given one path combination and one suspicious group of operations, we
   build ΦR ∧ ΦB and ask the solver for a witness schedule:

   - every event gets an order variable O (difference logic);
   - every cross-goroutine (send, recv) pair on the same channel gets a
     match variable P, with the global invariants  P(s,r) → O_s = O_r,
     at-most-one partner per send and per recv;
   - channel state (the paper's CB / CLOSED variables) is expressed with
     cardinality constraints over happens-before atoms: the number of
     sends minus receives executed before an operation;
   - mutexes are channels with buffer size one whose Lock is a send and
     Unlock a receive, and for which rendezvous matching is disabled.

   ΦR = Φorder ∧ Φspawn ∧ Φsync requires every goroutine to run up to
   (and excluding) its group operation with every earlier sync operation
   able to proceed; ΦB requires every group operation to block. *)

(* A micro-operation: a concrete send/recv/close/lock/unlock occurrence.
   Plain ops yield one micro-op; a select taking arm k yields arm k; a
   *blocked* select yields one micro-op per arm. *)
type micro = {
  m_gid : int;
  m_uid : int;                (* event uid within its goroutine's path *)
  m_arm : int option;
  m_kind : Report.op_kind;
  m_objs : Alias.obj list;
  m_pp : Ir.pp;
  m_loc : Minigo.Loc.t;
  m_func : string;
  m_in_group : bool;
  m_is_mutex : bool;
  m_wg_weight : int option;   (* static delta of a WaitGroup Add *)
}

type group_member = { g_gid : int; g_uid : int }

type problem = {
  combo : Pathenum.combination;
  group : group_member list;
  pset : Alias.obj list;
  prims : Primitives.t;
}

type verdict =
  | Blocks of (Ir.pp * int) list (* witness schedule: pp -> order value *)
  | Cannot_block

let is_mutex_obj prims obj =
  match Primitives.kind_of prims obj with
  | Some Primitives.Pmutex -> true
  | _ -> false

let shares_obj a b = List.exists (fun o -> List.mem o b.m_objs) a.m_objs

(* Collect the truncated event lists (events after a goroutine's group op
   do not execute) and the micro-ops. *)
let prepare (p : problem) =
  let group_uid gid =
    List.find_map (fun g -> if g.g_gid = gid then Some g.g_uid else None) p.group
  in
  let truncated =
    List.map
      (fun (gi : Pathenum.goroutine_instance) ->
        let cutoff = group_uid gi.gi_id in
        let evs =
          match cutoff with
          | None -> gi.gi_path.p_events
          | Some cut ->
              List.filter (fun (e : Pathenum.event) -> e.e_uid <= cut)
                gi.gi_path.p_events
        in
        (gi, evs))
      p.combo
  in
  let micros = ref [] in
  List.iter
    (fun ((gi : Pathenum.goroutine_instance), evs) ->
      List.iter
        (fun (e : Pathenum.event) ->
          let in_group = group_uid gi.gi_id = Some e.e_uid in
          let mk ?arm ?wg_weight kind objs =
            (* the mutex-as-channel encoding (§3.4): Lock is a send on a
               buffer-1 channel, Unlock a receive from it *)
            let kind =
              match kind with
              | Report.Klock -> Report.Ksend
              | Report.Kunlock -> Report.Krecv
              | k -> k
            in
            micros :=
              {
                m_gid = gi.gi_id;
                m_uid = e.e_uid;
                m_arm = arm;
                m_kind = kind;
                m_objs = objs;
                m_pp = e.e_pp;
                m_loc = e.e_loc;
                m_func = e.e_func;
                m_in_group = in_group;
                m_is_mutex = List.exists (is_mutex_obj p.prims) objs;
                m_wg_weight = wg_weight;
              }
              :: !micros
          in
          match e.e_desc with
          | Sync (Sop (kind, objs)) -> mk kind objs
          | Sync (Swg_add (objs, w)) ->
              mk ~wg_weight:(Option.value w ~default:(-1)) Report.Kwg_add objs
          | Sync (Sselect { arms; chosen; _ }) -> (
              if in_group then
                (* blocked select: every arm is a blocked micro-op *)
                List.iteri (fun i (kind, objs) -> mk ~arm:i kind objs) arms
              else
                match chosen with
                | Some i ->
                    let kind, objs = List.nth arms i in
                    mk ~arm:i kind objs
                | None -> () (* default taken: no channel op executed *))
          | Spawn _ | Branch _ -> ())
        evs)
    truncated;
  (truncated, List.rev !micros)

(* An incremental solver session (the PR-4 tentpole).  One [Smt.Solver]
   instance is shared by every group problem of a *combination*: each
   problem's constraints are asserted under a fresh selector guard,
   solved with that guard assumed, and the guard retired immediately
   afterwards.  What persists across a combination's groups — and is
   the point of the exercise — is the interned atom table, the theory
   lemmas (blocking clauses, which are tautologies over their atoms),
   the learnt clauses (self-guarding: they inherit the ¬selector
   literals of every group they were derived from), and the VSIDS
   branching activity.

   The solver is renewed at each combination boundary rather than kept
   for the whole channel: a combination's groups truly overlap (same
   paths, same events, same difference atoms), whereas across
   combinations the atoms are disjoint — carrying the instance over
   only accumulates retired groups' clauses in the shared watch lists
   and turns every later query into a scan of the channel's history
   (measured as a 4.5x slowdown on the ablated-scope bench before the
   renewal was introduced).

   Order variables are memoized per (gid, uid) while the combination is
   unchanged, so the many suspicious groups of one combination intern the
   same difference atoms and share each other's theory lemmas.  The table
   is reset when the combination changes because path uids are dense
   per-path and would otherwise alias distinct events.

   Program-order chains are deliberately NOT shared across groups: each
   group truncates the paths at a different cutoff, and a chain through a
   post-cutoff spawn event could manufacture a spurious cycle for another
   group.  Everything a problem asserts lives and dies with its guard. *)
type session = {
  mutable ss : Solver.t;
  mutable s_combo : Pathenum.combination option; (* phys-eq tracked *)
  s_ovar : (int * int, Solver.ovar) Hashtbl.t;
  mutable s_problems : int;
  mutable s_last_sat : int * int * int;
  mutable s_last_ext : int * int * int;
  mutable s_last_theory : int;
}

let create_session () =
  {
    ss = Solver.create ();
    s_combo = None;
    s_ovar = Hashtbl.create 64;
    s_problems = 0;
    s_last_sat = (0, 0, 0);
    s_last_ext = (0, 0, 0);
    s_last_theory = 0;
  }

(* [on_stats] reports the solver work attributable to this problem (the
   delta of the session counters: SAT conflicts / decisions /
   propagations, theory conflicts, learnt clauses, restarts, learnt-DB
   reductions) exactly once per call, on every exit path including
   [Solver.Timeout] — observability callers fold it into per-channel
   metrics. *)
let solve_incr (session : session) ?should_stop ?poll_every ?on_stats
    (p : problem) : verdict =
  let truncated, micros = prepare p in
  (* Sharing is per combination: the groups of one combination intern the
     same order variables and difference atoms, so their theory lemmas
     and learnt clauses transfer.  When the combination changes the atom
     vocabulary changes wholesale (path uids are dense per-path and would
     alias), so nothing useful survives — and what *does* survive in the
     solver (retired groups' clauses in shared watch lists, the growing
     trail and variable arrays) only taxes every later query.  Renewing
     the solver at each combination boundary keeps the per-query cost
     proportional to the live problem.  The cadence is a pure function of
     the problem stream, so it is deterministic. *)
  (match session.s_combo with
  | Some c when c == p.combo -> ()
  | _ ->
      session.ss <- Solver.create ();
      session.s_combo <- Some p.combo;
      Hashtbl.reset session.s_ovar;
      session.s_last_sat <- (0, 0, 0);
      session.s_last_ext <- (0, 0, 0);
      session.s_last_theory <- 0);
  let s = session.ss in
  session.s_problems <- session.s_problems + 1;
  let g = Solver.new_guard s in
  let finish () =
    Solver.retire_guard s g;
    (* periodically reclaim the clauses of retired groups *)
    if session.s_problems land 7 = 0 then Solver.simplify s;
    match on_stats with
    | None -> ()
    | Some f ->
        let (c, d, pr) = Solver.sat_stats s in
        let (lc, ld, lp) = session.s_last_sat in
        let (le, re, rd) = Solver.sat_ext_stats s in
        let (lle, lre, lrd) = session.s_last_ext in
        let tc = Solver.theory_conflicts s in
        let ltc = session.s_last_theory in
        session.s_last_sat <- (c, d, pr);
        session.s_last_ext <- (le, re, rd);
        session.s_last_theory <- tc;
        f ~conflicts:(c - lc) ~decisions:(d - ld) ~propagations:(pr - lp)
          ~theory_conflicts:(tc - ltc) ~learnts:(le - lle)
          ~restarts:(re - lre) ~reductions:(rd - lrd)
  in
  Fun.protect ~finally:finish @@ fun () ->
  (* ---- order variables, one per event ---- *)
  let ovar = session.s_ovar in
  let ovar_of gid uid =
    match Hashtbl.find_opt ovar (gid, uid) with
    | Some v -> v
    | None ->
        let v = Solver.new_order_var s (Printf.sprintf "O_g%d_e%d" gid uid) in
        Hashtbl.replace ovar (gid, uid) v;
        v
  in
  (* Φorder: program order within each goroutine *)
  List.iter
    (fun ((gi : Pathenum.goroutine_instance), evs) ->
      let rec chain = function
        | (a : Pathenum.event) :: (b :: _ as rest) ->
            Solver.add ~guard:g s
              (Solver.lt s (ovar_of gi.gi_id a.e_uid) (ovar_of gi.gi_id b.e_uid));
            chain rest
        | _ -> ()
      in
      chain evs)
    truncated;
  (* Φspawn: a goroutine's first event follows its spawn event *)
  List.iter
    (fun ((gi : Pathenum.goroutine_instance), evs) ->
      match (gi.gi_parent, gi.gi_spawn_uid, evs) with
      | Some parent, Some spawn_uid, first :: _ ->
          Solver.add ~guard:g s
            (Solver.lt s (ovar_of parent spawn_uid) (ovar_of gi.gi_id first.Pathenum.e_uid))
      | _ -> ())
    truncated;
  (* ---- match variables ---- *)
  let non_group = List.filter (fun m -> not m.m_in_group) micros in
  let m_ovar m = ovar_of m.m_gid m.m_uid in
  let sends =
    List.filter (fun m -> m.m_kind = Report.Ksend && not m.m_is_mutex) micros
  in
  let recvs =
    List.filter (fun m -> m.m_kind = Report.Krecv && not m.m_is_mutex) micros
  in
  let p_name a b =
    Printf.sprintf "P_s%d.%d.%s_r%d.%d.%s" a.m_gid a.m_uid
      (match a.m_arm with Some i -> string_of_int i | None -> "-")
      b.m_gid b.m_uid
      (match b.m_arm with Some i -> string_of_int i | None -> "-")
  in
  (* candidate pairs: cross-goroutine, same object, neither in the group *)
  let pairs =
    List.concat_map
      (fun snd_op ->
        List.filter_map
          (fun rcv ->
            if
              snd_op.m_gid <> rcv.m_gid
              && shares_obj snd_op rcv
              && (not snd_op.m_in_group)
              && not rcv.m_in_group
            then Some (snd_op, rcv)
            else None)
          recvs)
      sends
  in
  let pvar snd_op rcv = Solver.new_bool s (p_name snd_op rcv) in
  (* global invariants *)
  List.iter
    (fun (a, b) ->
      Solver.add ~guard:g s (E.implies (pvar a b) (Solver.eq s (m_ovar a) (m_ovar b))))
    pairs;
  let partners_of_send m =
    List.filter_map (fun (a, b) -> if a == m then Some b else None) pairs
  in
  let partners_of_recv m =
    List.filter_map (fun (a, b) -> if b == m then Some a else None) pairs
  in
  List.iter
    (fun m ->
      match partners_of_send m with
      | [] | [ _ ] -> ()
      | ps -> Solver.add ~guard:g s (E.AtMost (1, List.map (fun r -> pvar m r) ps)))
    sends;
  List.iter
    (fun m ->
      match partners_of_recv m with
      | [] | [ _ ] -> ()
      | ps -> Solver.add ~guard:g s (E.AtMost (1, List.map (fun a -> pvar a m) ps)))
    recvs;
  (* ---- channel-state cardinalities ---- *)
  (* Φsync only considers operations on primitives within Pset (§3.4);
     ops on out-of-scope primitives — the running example's ctx.Done() —
     are left unconstrained *)
  let primary_obj m = List.find_opt (fun o -> List.mem o p.pset) m.m_objs in
  let counting_sends obj m =
    List.filter
      (fun x -> x != m && x.m_kind = Report.Ksend && List.mem obj x.m_objs)
      non_group
  in
  let counting_recvs obj m =
    List.filter
      (fun x -> x != m && x.m_kind = Report.Krecv && List.mem obj x.m_objs)
      non_group
  in
  let closes obj =
    List.filter
      (fun x -> x.m_kind = Report.Kclose && List.mem obj x.m_objs)
      non_group
  in
  let before x m = Solver.lt s (m_ovar x) (m_ovar m) in
  (* #sends_before(m) - #recvs_before(m) <= bound *)
  let cb_at_most m obj bound =
    let ss = counting_sends obj m in
    let rs = counting_recvs obj m in
    let lits = List.map (fun x -> before x m) ss @ List.map (fun x -> E.not_ (before x m)) rs in
    let k = bound + List.length rs in
    if k < 0 then E.False
    else if k >= List.length lits then E.True
    else E.AtMost (k, lits)
  in
  let cb_at_least m obj bound =
    let ss = counting_sends obj m in
    let rs = counting_recvs obj m in
    let lits = List.map (fun x -> before x m) ss @ List.map (fun x -> E.not_ (before x m)) rs in
    let k = bound + List.length rs in
    if k <= 0 then E.True
    else if k > List.length lits then E.False
    else E.AtLeast (k, lits)
  in
  let closed_before m obj =
    match closes obj with
    | [] -> E.False
    | cs -> E.disj (List.map (fun c -> before c m) cs)
  in
  (* WaitGroup counting (the §6 extension, enabled by the path config's
     [model_waitgroup]): an Add with static delta w contributes w copies
     of its happens-before atom; counter(wait) = Σ w·[add before] -
     #[done before].  A weight of Some (-1) marks a non-constant Add,
     which makes the whole WaitGroup unmodelable. *)
  let wg_adds obj =
    List.filter
      (fun x -> x.m_kind = Report.Kwg_add && List.mem obj x.m_objs)
      non_group
  in
  let wg_dones obj =
    List.filter
      (fun x -> x.m_kind = Report.Kwg_done && List.mem obj x.m_objs)
      non_group
  in
  let wg_unmodelable obj =
    List.exists (fun x -> x.m_wg_weight = Some (-1)) (wg_adds obj)
  in
  let wg_lits m obj =
    let adds = wg_adds obj and dones = wg_dones obj in
    let add_lits =
      List.concat_map
        (fun a ->
          let w = max 0 (Option.value a.m_wg_weight ~default:1) in
          List.init w (fun _ -> before a m))
        adds
    in
    (add_lits @ List.map (fun d -> E.not_ (before d m)) dones, List.length dones)
  in
  (* Σ w·[add before m] - #[done before m] <= bound *)
  let wg_counter_at_most m obj bound =
    let lits, ndones = wg_lits m obj in
    let k = bound + ndones in
    if k < 0 then E.False
    else if k >= List.length lits then E.True
    else E.AtMost (k, lits)
  in
  let wg_counter_at_least m obj bound =
    let lits, ndones = wg_lits m obj in
    let k = bound + ndones in
    if k <= 0 then E.True
    else if k > List.length lits then E.False
    else E.AtLeast (k, lits)
  in
  let buffer_size obj =
    match Primitives.buffer_size p.prims obj with
    | Some b -> Some b
    | None -> None
  in
  (* exactly-one match, expanded (small partner sets) *)
  let matched_one m partners mk_p =
    match partners with
    | [] -> E.False
    | _ ->
        E.disj
          (List.map
             (fun r ->
               E.conj
                 (mk_p r
                  :: Solver.eq s (m_ovar m) (m_ovar r)
                  :: List.filter_map
                       (fun r' -> if r' == r then None else Some (E.not_ (mk_p r')))
                       partners))
             partners)
  in
  (* proceed constraint for a non-group micro-op (the paper's Φsync) *)
  let proceed m : E.t =
    match (m.m_kind, primary_obj m) with
    | _, None -> E.True
    | Report.Ksend, Some obj ->
        if m.m_is_mutex then
          (* lock: the buffer-1 channel must not be full *)
          cb_at_most m obj 0
        else
          let buf_ok =
            match buffer_size obj with
            | Some b -> cb_at_most m obj (b - 1)
            | None -> E.True (* unknown capacity: assume non-blocking *)
          in
          let rendezvous =
            matched_one m (partners_of_send m) (fun r -> pvar m r)
          in
          E.(buf_ok ||| rendezvous)
    | Report.Krecv, Some obj ->
        if m.m_is_mutex then
          (* unlock: the buffer-1 channel must contain the lock *)
          cb_at_least m obj 1
        else
          let nonempty = cb_at_least m obj 1 in
          let closed = closed_before m obj in
          let rendezvous =
            matched_one m (partners_of_recv m) (fun a -> pvar a m)
          in
          E.disj [ nonempty; closed; rendezvous ]
    | Report.Kwg_wait, Some obj ->
        if wg_unmodelable obj then E.True
        else wg_counter_at_most m obj 0 (* counter back to zero *)
    | (Report.Kclose | Report.Kunlock | Report.Kwg_add | Report.Kwg_done), _ ->
        E.True
    | (Report.Kselect | Report.Klock), _ -> E.True
  in
  List.iter (fun m -> if not m.m_in_group then Solver.add ~guard:g s (proceed m)) micros;
  (* ---- ΦB ---- *)
  let group_micros = List.filter (fun m -> m.m_in_group) micros in
  if group_micros = [] then Cannot_block
  else begin
    (* block constraint per group micro-op *)
    let blocks m : E.t =
      match (m.m_kind, primary_obj m) with
      | _, None -> E.False (* cannot reason: treat as un-blockable *)
      | Report.Ksend, Some obj ->
          if m.m_is_mutex then cb_at_least m obj 1 (* lock held *)
          else
            let full =
              match buffer_size obj with
              | Some b -> cb_at_least m obj b
              | None -> E.False
            in
            let no_partner =
              E.conj (List.map (fun r -> E.not_ (pvar m r)) (partners_of_send m))
            in
            let not_closed = E.not_ (closed_before m obj) in
            E.conj [ full; no_partner; not_closed ]
      | Report.Krecv, Some obj ->
          if m.m_is_mutex then E.False (* unlock never blocks *)
          else
            let empty = cb_at_most m obj 0 in
            let not_closed = E.not_ (closed_before m obj) in
            let no_partner =
              E.conj (List.map (fun a -> E.not_ (pvar a m)) (partners_of_recv m))
            in
            E.conj [ empty; not_closed; no_partner ]
      | Report.Kwg_wait, Some obj ->
          if wg_unmodelable obj then E.False
          else wg_counter_at_least m obj 1 (* some Add never matched *)
      | _, _ -> E.False
    in
    (* all micro-ops of one group event must block together (a select
       blocks iff every arm blocks) *)
    List.iter (fun m -> Solver.add ~guard:g s (blocks m)) group_micros;
    (* ΦB's Φorder: every non-group event precedes every group op *)
    List.iter
      (fun ((gi : Pathenum.goroutine_instance), evs) ->
        List.iter
          (fun (e : Pathenum.event) ->
            let e_in_group =
              List.exists (fun g -> g.g_gid = gi.gi_id && g.g_uid = e.e_uid) p.group
            in
            if not e_in_group then
              List.iter
                (fun (gm : group_member) ->
                  Solver.add ~guard:g s
                    (Solver.lt s (ovar_of gi.gi_id e.e_uid)
                       (ovar_of gm.g_gid gm.g_uid)))
                p.group)
          evs)
      truncated;
    match Solver.solve ?should_stop ?poll_every ~assumptions:[ g ] s with
    | Solver.Unsat -> Cannot_block
    | Solver.Sat_model m ->
        let witness =
          List.concat_map
            (fun ((gi : Pathenum.goroutine_instance), evs) ->
              List.map
                (fun (e : Pathenum.event) ->
                  (e.e_pp, m.Solver.order_of (ovar_of gi.gi_id e.e_uid)))
                evs)
            truncated
        in
        Blocks witness
  end

(* One-shot compatibility wrapper: a fresh session per problem. *)
let solve ?should_stop ?poll_every ?on_stats (p : problem) : verdict =
  solve_incr (create_session ()) ?should_stop ?poll_every ?on_stats p
