module Ir = Goir.Ir
module Alias = Goanalysis.Alias
module Callgraph = Goanalysis.Callgraph

(* Disentangling (paper §3.2).

   Analysing a whole program with every primitive at once does not scale;
   GCatch instead inspects each channel [c] inside a small [scope] and
   together with only the related primitives [pset]:

   - [scope]: the lowest-common-ancestor function of all of c's
     operations, plus everything it calls (directly or transitively);
   - [pset]: primitives with a scope no larger than c's that are in a
     circular dependence relationship with c, where "a depends on b" when
     an unblocking operation of a is reachable from a blocking operation
     of b, or when a and b appear in the same select. *)

type scope = {
  root : string;           (* the LCA function *)
  funcs : string list;     (* functions in the scope *)
}

type t = {
  prims : Primitives.t;
  cg : Callgraph.t;
  all : Alias.obj list; (* every channel and mutex, sorted *)
  scopes : (Alias.obj, scope) Hashtbl.t;
  (* dependence edges: a depends on b *)
  deps : (Alias.obj, Alias.obj list) Hashtbl.t;
}

let is_blocking_kind = function
  | Report.Krecv | Report.Ksend | Report.Klock | Report.Kwg_wait -> true
  | Report.Kclose | Report.Kunlock | Report.Kselect | Report.Kwg_add
  | Report.Kwg_done ->
      false

let is_unblocking_kind = function
  | Report.Ksend | Report.Kclose | Report.Kunlock | Report.Kwg_done -> true
  | Report.Krecv | Report.Klock | Report.Kwg_wait | Report.Kselect
  | Report.Kwg_add ->
      false

(* Scope of one object: LCA of every function using it. *)
let compute_scope prims cg obj : scope =
  let users = Primitives.funcs_using prims obj in
  let root =
    match Callgraph.lca cg users with
    | Some f -> f
    | None -> ( match users with f :: _ -> f | [] -> "main")
  in
  let funcs =
    Hashtbl.fold (fun f () acc -> f :: acc) (Callgraph.reachable_from cg root) []
    |> List.sort String.compare
  in
  { root; funcs }

(* "a depends on b" when an operation of [a] with unblocking capability
   is reachable from a blocking operation of [b], approximated at
   function granularity using the call graph: reachable when the
   unblocking op's function is reachable from the blocking op's
   function, or both live in one function.  Computed inverted — one
   memoized reachability walk per distinct blocking-op function, and
   every object with an unblocking op inside that walk depends on [b] —
   rather than testing all object pairs, which is quadratic in the
   primitive count (it dominated whole-app analysis: each of the pairs
   re-walked the call graph). *)
let direct_deps prims cg (all : Alias.obj list) :
    (Alias.obj, Alias.obj list) Hashtbl.t =
  let unblock_objs : (string, Alias.obj list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun a ->
      List.iter
        (fun (o : Primitives.op) ->
          if is_unblocking_kind o.o_kind then
            let cur =
              Option.value (Hashtbl.find_opt unblock_objs o.o_func) ~default:[]
            in
            if not (List.mem a cur) then
              Hashtbl.replace unblock_objs o.o_func (a :: cur))
        (Primitives.ops_of prims a))
    all;
  let reach_memo : (string, (string, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let reach f =
    match Hashtbl.find_opt reach_memo f with
    | Some r -> r
    | None ->
        let r = Callgraph.reachable_from cg f in
        Hashtbl.replace reach_memo f r;
        r
  in
  let edges : (Alias.obj, Alias.obj list) Hashtbl.t = Hashtbl.create 64 in
  let add_dep a b =
    if a <> b then
      let cur = Option.value (Hashtbl.find_opt edges a) ~default:[] in
      if not (List.mem b cur) then Hashtbl.replace edges a (b :: cur)
  in
  List.iter
    (fun b ->
      List.iter
        (fun (o : Primitives.op) ->
          if is_blocking_kind o.o_kind then
            Hashtbl.iter
              (fun g () ->
                List.iter
                  (fun a -> add_dep a b)
                  (Option.value (Hashtbl.find_opt unblock_objs g) ~default:[]))
              (reach o.o_func))
        (Primitives.ops_of prims b))
    all;
  edges

(* Channels waited on by one select depend on each other (§3.2, rule 2). *)
let select_partners prims (prog : Ir.program) : (Alias.obj * Alias.obj) list =
  let pairs = ref [] in
  List.iter
    (fun (f : Ir.func) ->
      Array.iter
        (fun (b : Ir.block) ->
          match b.term with
          | Tselect (arms, _, _) ->
              let objs_per_arm =
                List.map
                  (fun (a : Ir.select_arm) ->
                    let p =
                      match a.arm_op with Arm_recv (p, _) | Arm_send (p, _) -> p
                    in
                    Primitives.objs prims f.name p)
                  arms
              in
              List.iteri
                (fun i oi ->
                  List.iteri
                    (fun j oj ->
                      if i < j then
                        List.iter
                          (fun a -> List.iter (fun b -> pairs := (a, b) :: !pairs) oj)
                          oi)
                    objs_per_arm)
                objs_per_arm
          | _ -> ())
        f.blocks)
    (Ir.funcs_list prog);
  !pairs

let build (prims : Primitives.t) (cg : Callgraph.t) : t =
  let all =
    Primitives.channels prims @ Primitives.mutexes prims
    |> List.sort_uniq compare
  in
  let scopes = Hashtbl.create 16 in
  List.iter (fun obj -> Hashtbl.replace scopes obj (compute_scope prims cg obj)) all;
  let direct = direct_deps prims cg all in
  List.iter
    (fun (a, b) ->
      let add_dep a b =
        if a <> b then
          let cur = Option.value (Hashtbl.find_opt direct a) ~default:[] in
          if not (List.mem b cur) then Hashtbl.replace direct a (b :: cur)
      in
      add_dep a b;
      add_dep b a)
    (select_partners prims prims.prog);
  (* transitive closure: one graph walk per object over the direct
     edges (the old association-list fixpoint re-scanned every list on
     every round) *)
  let deps = Hashtbl.create 64 in
  List.iter
    (fun a ->
      let seen : (Alias.obj, unit) Hashtbl.t = Hashtbl.create 16 in
      let rec go b =
        List.iter
          (fun c ->
            if not (Hashtbl.mem seen c) then begin
              Hashtbl.add seen c ();
              go c
            end)
          (Option.value (Hashtbl.find_opt direct b) ~default:[])
      in
      go a;
      (* the old closure never records an object as depending on itself *)
      Hashtbl.remove seen a;
      let l = Hashtbl.fold (fun c () acc -> c :: acc) seen [] in
      if l <> [] then Hashtbl.replace deps a l)
    all;
  { prims; cg; all; scopes; deps }

let scope_of t obj =
  match Hashtbl.find_opt t.scopes obj with
  | Some s -> s
  | None ->
      let s = compute_scope t.prims t.cg obj in
      Hashtbl.replace t.scopes obj s;
      s

(* Externally-created primitives (context done channels, channels arriving
   through entry parameters) have creation sites outside the program, so
   their scope extends beyond anything we analyse: treat it as unbounded.
   This is what keeps ctx.Done() out of outDone's Pset in the paper's
   running example. *)
let rec rooted_external = function
  | Alias.Aext _ -> true
  | Alias.Aprim (owner, _) -> rooted_external owner
  | Alias.Achan _ | Alias.Astruct _ | Alias.Afunc _ -> false

let scope_size t obj =
  if rooted_external obj then max_int / 2
  else List.length (scope_of t obj).funcs

let depends t a b =
  match Hashtbl.find_opt t.deps a with Some l -> List.mem b l | None -> false

(* Pset(c): c plus primitives with no-larger scope circularly dependent
   with c (§3.2). *)
let pset t (c : Alias.obj) : Alias.obj list =
  (* only objects c depends on can be mutually dependent with c, so
     filter deps(c) — sorted, to keep the order the old filter over the
     sorted primitive list produced — instead of every primitive *)
  let dc = Option.value (Hashtbl.find_opt t.deps c) ~default:[] in
  let related =
    List.filter
      (fun p ->
        p <> c && depends t p c && scope_size t p <= scope_size t c)
      (List.sort_uniq compare dc)
  in
  c :: related
