module Ir = Goir.Ir
module Alias = Goanalysis.Alias
module Callgraph = Goanalysis.Callgraph
module Pool = Goengine.Pool
module Clock = Goengine.Clock
module M = Goobs.Metrics
module Trace = Goobs.Trace

(* The BMOC detector (paper Algorithm 1).

   For every channel: compute its scope and Pset (disentangling), collect
   the goroutines active in the scope, enumerate path combinations,
   compute suspicious groups, and hand each (combination, group) pair to
   the constraint system.  A satisfiable ΦR ∧ ΦB is a detected blocking
   misuse-of-channel bug. *)

type config = {
  path_cfg : Pathenum.config;
  max_combos : int;
  max_goroutines : int;
  max_groups : int;          (* per combination *)
  max_group_size : int;
  disentangle : bool;        (* E5 ablation knob *)
}

let default_config =
  {
    path_cfg = Pathenum.default_config;
    max_combos = 128;
    max_goroutines = 6;
    max_groups = 64;
    max_group_size = 2;
    disentangle = true;
  }

(* Detector statistics, served from the metrics registry: [detect_ext]
   accumulates per-channel counts into "bmoc.*" counters and returns
   this record as a read-only snapshot of that run (the field names are
   the registry names minus the "bmoc." prefix). *)
type stats = {
  mutable channels_analysed : int;
  mutable combinations : int;
  mutable groups_checked : int;
  mutable solver_calls : int;
  mutable total_path_events : int;
  mutable constraints_hint : int; (* micro-ops considered, a proxy *)
  mutable solver_timeouts : int;  (* channels skipped on budget exhaustion *)
}

(* Per-channel working counters: owned by the single domain analysing
   that channel, so plain mutable ints — the registry is only touched
   once per channel, keeping the solver loop free of atomics. *)
type chan_stats = {
  mutable c_combinations : int;
  mutable c_groups_checked : int;
  mutable c_solver_calls : int;
  mutable c_path_events : int;
  mutable c_constraints_hint : int;
  mutable c_sat_conflicts : int;
  mutable c_sat_decisions : int;
  mutable c_sat_propagations : int;
  mutable c_theory_conflicts : int;
}

let new_chan_stats () =
  {
    c_combinations = 0;
    c_groups_checked = 0;
    c_solver_calls = 0;
    c_path_events = 0;
    c_constraints_hint = 0;
    c_sat_conflicts = 0;
    c_sat_decisions = 0;
    c_sat_propagations = 0;
    c_theory_conflicts = 0;
  }

(* Blocking-capable candidate events for suspicious groups. *)
let candidates (pset : Alias.obj list) (gi : Pathenum.goroutine_instance) :
    Pathenum.event list =
  List.filter
    (fun (e : Pathenum.event) ->
      match e.e_desc with
      | Sync
          (Sop
             ( (Report.Ksend | Report.Krecv | Report.Klock | Report.Kwg_wait),
               objs )) ->
          List.exists (fun o -> List.mem o pset) objs
      | Sync (Sselect { arms; has_default = false; _ }) ->
          (* a select is a candidate only when every arm is over Pset
             primitives — otherwise its blocking cannot be decided in this
             scope (the paper's running example excludes the parent's
             select for exactly this reason) *)
          arms <> []
          && List.for_all
               (fun (_, objs) ->
                 objs <> [] && List.for_all (fun o -> List.mem o pset) objs)
               arms
      | _ -> false)
    gi.gi_path.p_events

(* Ops that could unblock each other must not share a group: a send and a
   receive on the same object. *)
let mutually_unblocking (a : Pathenum.event) (b : Pathenum.event) : bool =
  let ops_of (e : Pathenum.event) =
    match e.e_desc with
    | Sync (Sop (k, objs)) -> [ (k, objs) ]
    | Sync (Sselect { arms; _ }) -> arms
    | _ -> []
  in
  List.exists
    (fun (ka, oa) ->
      List.exists
        (fun (kb, ob) ->
          let crossing =
            match (ka, kb) with
            | Report.Ksend, Report.Krecv | Report.Krecv, Report.Ksend -> true
            | _ -> false
          in
          crossing && List.exists (fun o -> List.mem o ob) oa)
        (ops_of b))
    (ops_of a)

(* All suspicious groups of a combination, sizes 1..max_group_size, at
   most one op per goroutine. *)
let suspicious_groups cfg pset (combo : Pathenum.combination) :
    Constraints.group_member list list =
  let per_g =
    List.map (fun gi -> (gi, candidates pset gi)) combo
    |> List.filter (fun (_, cs) -> cs <> [])
  in
  let singles =
    List.concat_map
      (fun ((gi : Pathenum.goroutine_instance), cs) ->
        List.map
          (fun (e : Pathenum.event) ->
            [ { Constraints.g_gid = gi.gi_id; g_uid = e.e_uid } ])
          cs)
      per_g
  in
  let pairs =
    if cfg.max_group_size < 2 then []
    else
      List.concat_map
        (fun ((g1 : Pathenum.goroutine_instance), cs1) ->
          List.concat_map
            (fun ((g2 : Pathenum.goroutine_instance), cs2) ->
              if g1.gi_id >= g2.gi_id then []
              else
                List.concat_map
                  (fun e1 ->
                    List.filter_map
                      (fun e2 ->
                        if mutually_unblocking e1 e2 then None
                        else
                          Some
                            [
                              { Constraints.g_gid = g1.gi_id; g_uid = e1.Pathenum.e_uid };
                              { Constraints.g_gid = g2.gi_id; g_uid = e2.Pathenum.e_uid };
                            ])
                      cs2)
                  cs1)
            per_g)
        per_g
  in
  let all = singles @ pairs in
  if List.length all > cfg.max_groups then
    List.filteri (fun i _ -> i < cfg.max_groups) all
  else all

(* Detect BMOC bugs for one channel.  Returns the bugs plus a flag saying
   whether the channel blew its [solver_timeout_ms] budget — in which case
   its (partial, schedule-dependent) findings are discarded so the output
   stays deterministic, and the caller reports the channel as skipped. *)
let detect_channel ?(cfg = default_config) ~(prims : Primitives.t)
    ~(dis : Disentangle.t) ~(cg : Callgraph.t) ~(alias : Alias.t)
    ~(prog : Ir.program) ~(cst : chan_stats) (c : Alias.obj) :
    Report.bmoc_bug list * bool =
  let on_stats ~conflicts ~decisions ~propagations ~theory_conflicts =
    cst.c_sat_conflicts <- cst.c_sat_conflicts + conflicts;
    cst.c_sat_decisions <- cst.c_sat_decisions + decisions;
    cst.c_sat_propagations <- cst.c_sat_propagations + propagations;
    cst.c_theory_conflicts <- cst.c_theory_conflicts + theory_conflicts
  in
  let should_stop =
    match cfg.path_cfg.Pathenum.solver_timeout_ms with
    | None -> None
    | Some ms ->
        let deadline = Clock.now_s () +. (float_of_int ms /. 1000.) in
        Some (fun () -> Clock.now_s () > deadline)
  in
  let scope, pset =
    if cfg.disentangle then (Disentangle.scope_of dis c, Disentangle.pset dis c)
    else begin
      (* ablation: whole-program scope from main with every primitive *)
      let root = match prog.Ir.main with Some m -> m | None -> (Disentangle.scope_of dis c).root in
      let funcs =
        Hashtbl.fold (fun f () acc -> f :: acc) (Callgraph.reachable_from cg root) []
      in
      ( { Disentangle.root; funcs = List.sort String.compare funcs },
        Primitives.channels prims @ Primitives.mutexes prims )
    end
  in
  let ctx =
    {
      Pathenum.prog;
      alias;
      cg;
      pset;
      scope_funcs = scope.funcs;
      cfg = cfg.path_cfg;
      touch_memo = Hashtbl.create 16;
    }
  in
  let combos =
    Pathenum.combinations ctx ~root:scope.root ~max_combos:cfg.max_combos
      ~max_goroutines:cfg.max_goroutines
  in
  let bugs = ref [] in
  let seen_groups = Hashtbl.create 16 in
  try
    List.iteri
    (fun combo_id combo ->
      if (not (Pathenum.has_conflicts combo)) && Pathenum.has_blocking_op combo
      then begin
        cst.c_combinations <- cst.c_combinations + 1;
        List.iter
          (fun gi ->
            cst.c_path_events <-
              cst.c_path_events + List.length gi.Pathenum.gi_path.p_events)
          combo;
        let groups = suspicious_groups cfg pset combo in
        List.iter
          (fun group ->
            (* dedupe by the static pps of the group ops *)
            let key =
              List.sort compare
                (List.map
                   (fun (g : Constraints.group_member) ->
                     let gi = List.nth combo g.g_gid in
                     match
                       List.find_opt
                         (fun (e : Pathenum.event) -> e.e_uid = g.g_uid)
                         gi.gi_path.p_events
                     with
                     | Some e -> e.e_pp
                     | None -> -1)
                   group)
            in
            if not (Hashtbl.mem seen_groups key) then begin
              cst.c_groups_checked <- cst.c_groups_checked + 1;
              let problem = { Constraints.combo; group; pset; prims } in
              cst.c_solver_calls <- cst.c_solver_calls + 1;
              match Constraints.solve ?should_stop ~on_stats problem with
              | Constraints.Cannot_block -> ()
              | Constraints.Blocks witness ->
                  Hashtbl.add seen_groups key ();
                  let blocked =
                    List.map
                      (fun (g : Constraints.group_member) ->
                        let gi = List.nth combo g.g_gid in
                        let e =
                          List.find
                            (fun (e : Pathenum.event) -> e.e_uid = g.g_uid)
                            gi.gi_path.p_events
                        in
                        let kind =
                          match e.e_desc with
                          | Sync (Sop (k, _)) -> k
                          | Sync (Sselect _) -> Report.Kselect
                          | _ -> Report.Ksend
                        in
                        {
                          Report.bo_func = e.e_func;
                          bo_pp = e.e_pp;
                          bo_loc = e.e_loc;
                          bo_kind = kind;
                        })
                      group
                  in
                  let involves_mutex =
                    List.exists
                      (fun o ->
                        match Primitives.kind_of prims o with
                        | Some Primitives.Pmutex -> true
                        | _ -> false)
                      pset
                    && List.exists
                         (fun (b : Report.blocked_op) ->
                           b.bo_kind = Report.Klock || b.bo_kind = Report.Kunlock)
                         blocked
                  in
                  bugs :=
                    {
                      Report.channel = c;
                      chan_loc = Alias.creation_loc alias c;
                      blocked;
                      kind =
                        (if involves_mutex then Report.Chan_and_mutex
                         else Report.Chan_only);
                      scope_funcs = scope.funcs;
                      witness;
                      combination_id = combo_id;
                    }
                    :: !bugs
            end)
          groups
      end)
    combos;
    (List.rev !bugs, false)
  with Gosmt.Solver.Timeout -> ([], true)

(* A root primitive skipped because its channel blew the per-channel
   solver budget.  Surfaced to callers so they can emit a warning; the
   extra fields feed the skip diagnostic: how long the channel actually
   ran, what the budget was, and how many path events were enumerated
   before it was cut off. *)
type skipped = {
  sk_obj : Alias.obj;
  sk_loc : Minigo.Loc.t option;
  sk_elapsed_ms : float;
  sk_budget_ms : int option;
  sk_ops : int; (* path events enumerated for the channel *)
}

(* Canonical order for the final bug list: creation site of the channel,
   then the (sorted) program points of the blocked ops, then the
   combination id.  Everything in the key is schedule-independent, so the
   report is byte-identical however the per-channel work was scheduled. *)
let bug_order_key (b : Report.bmoc_bug) =
  ( (match b.Report.chan_loc with
    | Some l -> Minigo.Loc.to_string l
    | None -> ""),
    List.sort compare (List.map (fun o -> o.Report.bo_pp) b.Report.blocked),
    b.Report.combination_id )

(* Snapshot the "bmoc.*" counters of a run-local registry into the
   legacy [stats] record shape. *)
let stats_of (reg : M.t) : stats =
  let c name = M.value (M.counter reg ("bmoc." ^ name)) in
  {
    channels_analysed = c "channels_analysed";
    combinations = c "combinations";
    groups_checked = c "groups_checked";
    solver_calls = c "solver_calls";
    total_path_events = c "total_path_events";
    constraints_hint = c "constraints_hint";
    solver_timeouts = c "solver_timeouts";
  }

(* Detect BMOC bugs across the whole program, fanning the per-root
   [detect_channel] calls out over [pool].  Each worker accumulates into
   a private per-channel record (and, inside [Constraints.solve], its
   own scratch SAT solver); the per-channel counts are folded into a
   run-local metrics registry in canonical root order — sums commute, so
   jobs=1 and jobs=N produce identical metrics — and the final bug list
   is sorted by location, so the output is schedule-independent too.
   The run registry is merged into [metrics] (default: the process-wide
   registry) and snapshotted as the returned [stats]. *)
let detect_ext ?(cfg = default_config) ?(pool = Pool.sequential)
    ?(metrics = M.default) (prog : Ir.program) :
    Report.bmoc_bug list * stats * skipped list =
  let reg = M.create () in
  let alias = Alias.analyse prog in
  let cg = Callgraph.build ~alias prog in
  let prims = Primitives.collect prog alias in
  let dis = Disentangle.build prims cg in
  let roots =
    List.filter
      (function Alias.Achan _ -> true | _ -> false)
      (Primitives.channels prims)
    @ (* with the §6 WaitGroup extension on, WaitGroups are analysed as
         root primitives of their own, like channels *)
    (if cfg.path_cfg.model_waitgroup then
       List.filter
         (fun obj -> not (Disentangle.rooted_external obj))
         (Hashtbl.fold
            (fun obj kind acc ->
              if kind = Primitives.Pwaitgroup then obj :: acc else acc)
            prims.kinds [])
     else [])
  in
  (* canonical root order: structural compare is deterministic and
     independent of Hashtbl iteration order (the WaitGroup fold above) *)
  let roots = List.sort_uniq compare roots in
  (* Warm the scope cache sequentially: [Disentangle.scope_of] memoizes on
     miss (WaitGroup roots are not precomputed by [build]), and that table
     must not be written to from several domains at once. *)
  List.iter (fun c -> ignore (Disentangle.scope_of dis c)) roots;
  let per_root =
    Pool.map ~pool
      (fun c ->
        Trace.with_span ~name:"bmoc.channel"
          ~args:[ ("channel", Alias.obj_str c) ]
          (fun () ->
            let cst = new_chan_stats () in
            let t0 = Clock.now_s () in
            let found, timed_out =
              detect_channel ~cfg ~prims ~dis ~cg ~alias ~prog ~cst c
            in
            let elapsed_ms = 1000.0 *. Clock.elapsed_since t0 in
            Trace.set_args
              [
                ("solver_calls", string_of_int cst.c_solver_calls);
                ("sat_conflicts", string_of_int cst.c_sat_conflicts);
                ("sat_decisions", string_of_int cst.c_sat_decisions);
                ("path_events", string_of_int cst.c_path_events);
                ("elapsed_ms", Printf.sprintf "%.1f" elapsed_ms);
                ("timed_out", string_of_bool timed_out);
              ];
            (c, found, cst, timed_out, elapsed_ms)))
      roots
  in
  let bugs = ref [] in
  let skips = ref [] in
  let seen = Hashtbl.create 16 in
  let bump name n = if n <> 0 then M.add (M.counter reg ("bmoc." ^ name)) n in
  let chan_ms = M.histogram reg "bmoc.channel_solve_ms" in
  List.iter
    (fun (c, found, cst, timed_out, elapsed_ms) ->
      bump "channels_analysed" 1;
      bump "combinations" cst.c_combinations;
      bump "groups_checked" cst.c_groups_checked;
      bump "solver_calls" cst.c_solver_calls;
      bump "total_path_events" cst.c_path_events;
      bump "constraints_hint" cst.c_constraints_hint;
      bump "sat_conflicts" cst.c_sat_conflicts;
      bump "sat_decisions" cst.c_sat_decisions;
      bump "sat_propagations" cst.c_sat_propagations;
      bump "theory_conflicts" cst.c_theory_conflicts;
      if timed_out then bump "solver_timeouts" 1;
      M.observe chan_ms elapsed_ms;
      Goobs.Profile.note_channel
        {
          Goobs.Profile.cs_channel = Alias.obj_str c;
          cs_elapsed_ms = elapsed_ms;
          cs_solver_calls = cst.c_solver_calls;
          cs_sat_conflicts = cst.c_sat_conflicts;
          cs_sat_decisions = cst.c_sat_decisions;
          cs_sat_propagations = cst.c_sat_propagations;
          cs_path_events = cst.c_path_events;
          cs_timed_out = timed_out;
        };
      if timed_out then
        skips :=
          {
            sk_obj = c;
            sk_loc = Alias.creation_loc alias c;
            sk_elapsed_ms = elapsed_ms;
            sk_budget_ms = cfg.path_cfg.Pathenum.solver_timeout_ms;
            sk_ops = cst.c_path_events;
          }
          :: !skips;
      List.iter
        (fun (b : Report.bmoc_bug) ->
          let key =
            List.sort compare (List.map (fun o -> o.Report.bo_pp) b.blocked)
          in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            bugs := b :: !bugs
          end)
        found)
    per_root;
  let bugs =
    List.sort
      (fun a b -> compare (bug_order_key a) (bug_order_key b))
      (List.rev !bugs)
  in
  let stats = stats_of reg in
  M.merge_into ~dst:metrics reg;
  (bugs, stats, List.rev !skips)

(* Detect BMOC bugs across the whole program. *)
let detect ?cfg ?pool (prog : Ir.program) : Report.bmoc_bug list * stats =
  let bugs, stats, _ = detect_ext ?cfg ?pool prog in
  (bugs, stats)
