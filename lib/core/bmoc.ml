module Ir = Goir.Ir
module Alias = Goanalysis.Alias
module Callgraph = Goanalysis.Callgraph
module Pool = Goengine.Pool
module Clock = Goengine.Clock

(* The BMOC detector (paper Algorithm 1).

   For every channel: compute its scope and Pset (disentangling), collect
   the goroutines active in the scope, enumerate path combinations,
   compute suspicious groups, and hand each (combination, group) pair to
   the constraint system.  A satisfiable ΦR ∧ ΦB is a detected blocking
   misuse-of-channel bug. *)

type config = {
  path_cfg : Pathenum.config;
  max_combos : int;
  max_goroutines : int;
  max_groups : int;          (* per combination *)
  max_group_size : int;
  disentangle : bool;        (* E5 ablation knob *)
}

let default_config =
  {
    path_cfg = Pathenum.default_config;
    max_combos = 128;
    max_goroutines = 6;
    max_groups = 64;
    max_group_size = 2;
    disentangle = true;
  }

type stats = {
  mutable channels_analysed : int;
  mutable combinations : int;
  mutable groups_checked : int;
  mutable solver_calls : int;
  mutable total_path_events : int;
  mutable constraints_hint : int; (* micro-ops considered, a proxy *)
  mutable solver_timeouts : int;  (* channels skipped on budget exhaustion *)
}

let new_stats () =
  {
    channels_analysed = 0;
    combinations = 0;
    groups_checked = 0;
    solver_calls = 0;
    total_path_events = 0;
    constraints_hint = 0;
    solver_timeouts = 0;
  }

(* Sum [src] into [dst]: each parallel worker accumulates into a private
   stats record; the per-channel records are folded back in root order. *)
let add_stats (dst : stats) (src : stats) =
  dst.channels_analysed <- dst.channels_analysed + src.channels_analysed;
  dst.combinations <- dst.combinations + src.combinations;
  dst.groups_checked <- dst.groups_checked + src.groups_checked;
  dst.solver_calls <- dst.solver_calls + src.solver_calls;
  dst.total_path_events <- dst.total_path_events + src.total_path_events;
  dst.constraints_hint <- dst.constraints_hint + src.constraints_hint;
  dst.solver_timeouts <- dst.solver_timeouts + src.solver_timeouts

(* Blocking-capable candidate events for suspicious groups. *)
let candidates (pset : Alias.obj list) (gi : Pathenum.goroutine_instance) :
    Pathenum.event list =
  List.filter
    (fun (e : Pathenum.event) ->
      match e.e_desc with
      | Sync
          (Sop
             ( (Report.Ksend | Report.Krecv | Report.Klock | Report.Kwg_wait),
               objs )) ->
          List.exists (fun o -> List.mem o pset) objs
      | Sync (Sselect { arms; has_default = false; _ }) ->
          (* a select is a candidate only when every arm is over Pset
             primitives — otherwise its blocking cannot be decided in this
             scope (the paper's running example excludes the parent's
             select for exactly this reason) *)
          arms <> []
          && List.for_all
               (fun (_, objs) ->
                 objs <> [] && List.for_all (fun o -> List.mem o pset) objs)
               arms
      | _ -> false)
    gi.gi_path.p_events

(* Ops that could unblock each other must not share a group: a send and a
   receive on the same object. *)
let mutually_unblocking (a : Pathenum.event) (b : Pathenum.event) : bool =
  let ops_of (e : Pathenum.event) =
    match e.e_desc with
    | Sync (Sop (k, objs)) -> [ (k, objs) ]
    | Sync (Sselect { arms; _ }) -> arms
    | _ -> []
  in
  List.exists
    (fun (ka, oa) ->
      List.exists
        (fun (kb, ob) ->
          let crossing =
            match (ka, kb) with
            | Report.Ksend, Report.Krecv | Report.Krecv, Report.Ksend -> true
            | _ -> false
          in
          crossing && List.exists (fun o -> List.mem o ob) oa)
        (ops_of b))
    (ops_of a)

(* All suspicious groups of a combination, sizes 1..max_group_size, at
   most one op per goroutine. *)
let suspicious_groups cfg pset (combo : Pathenum.combination) :
    Constraints.group_member list list =
  let per_g =
    List.map (fun gi -> (gi, candidates pset gi)) combo
    |> List.filter (fun (_, cs) -> cs <> [])
  in
  let singles =
    List.concat_map
      (fun ((gi : Pathenum.goroutine_instance), cs) ->
        List.map
          (fun (e : Pathenum.event) ->
            [ { Constraints.g_gid = gi.gi_id; g_uid = e.e_uid } ])
          cs)
      per_g
  in
  let pairs =
    if cfg.max_group_size < 2 then []
    else
      List.concat_map
        (fun ((g1 : Pathenum.goroutine_instance), cs1) ->
          List.concat_map
            (fun ((g2 : Pathenum.goroutine_instance), cs2) ->
              if g1.gi_id >= g2.gi_id then []
              else
                List.concat_map
                  (fun e1 ->
                    List.filter_map
                      (fun e2 ->
                        if mutually_unblocking e1 e2 then None
                        else
                          Some
                            [
                              { Constraints.g_gid = g1.gi_id; g_uid = e1.Pathenum.e_uid };
                              { Constraints.g_gid = g2.gi_id; g_uid = e2.Pathenum.e_uid };
                            ])
                      cs2)
                  cs1)
            per_g)
        per_g
  in
  let all = singles @ pairs in
  if List.length all > cfg.max_groups then
    List.filteri (fun i _ -> i < cfg.max_groups) all
  else all

(* Detect BMOC bugs for one channel.  Returns the bugs plus a flag saying
   whether the channel blew its [solver_timeout_ms] budget — in which case
   its (partial, schedule-dependent) findings are discarded so the output
   stays deterministic, and the caller reports the channel as skipped. *)
let detect_channel ?(cfg = default_config) ~(prims : Primitives.t)
    ~(dis : Disentangle.t) ~(cg : Callgraph.t) ~(alias : Alias.t)
    ~(prog : Ir.program) ~(stats : stats) (c : Alias.obj) :
    Report.bmoc_bug list * bool =
  stats.channels_analysed <- stats.channels_analysed + 1;
  let should_stop =
    match cfg.path_cfg.Pathenum.solver_timeout_ms with
    | None -> None
    | Some ms ->
        let deadline = Clock.now_s () +. (float_of_int ms /. 1000.) in
        Some (fun () -> Clock.now_s () > deadline)
  in
  let scope, pset =
    if cfg.disentangle then (Disentangle.scope_of dis c, Disentangle.pset dis c)
    else begin
      (* ablation: whole-program scope from main with every primitive *)
      let root = match prog.Ir.main with Some m -> m | None -> (Disentangle.scope_of dis c).root in
      let funcs =
        Hashtbl.fold (fun f () acc -> f :: acc) (Callgraph.reachable_from cg root) []
      in
      ( { Disentangle.root; funcs = List.sort String.compare funcs },
        Primitives.channels prims @ Primitives.mutexes prims )
    end
  in
  let ctx =
    {
      Pathenum.prog;
      alias;
      cg;
      pset;
      scope_funcs = scope.funcs;
      cfg = cfg.path_cfg;
      touch_memo = Hashtbl.create 16;
    }
  in
  let combos =
    Pathenum.combinations ctx ~root:scope.root ~max_combos:cfg.max_combos
      ~max_goroutines:cfg.max_goroutines
  in
  let bugs = ref [] in
  let seen_groups = Hashtbl.create 16 in
  try
    List.iteri
    (fun combo_id combo ->
      if (not (Pathenum.has_conflicts combo)) && Pathenum.has_blocking_op combo
      then begin
        stats.combinations <- stats.combinations + 1;
        List.iter
          (fun gi ->
            stats.total_path_events <-
              stats.total_path_events
              + List.length gi.Pathenum.gi_path.p_events)
          combo;
        let groups = suspicious_groups cfg pset combo in
        List.iter
          (fun group ->
            (* dedupe by the static pps of the group ops *)
            let key =
              List.sort compare
                (List.map
                   (fun (g : Constraints.group_member) ->
                     let gi = List.nth combo g.g_gid in
                     match
                       List.find_opt
                         (fun (e : Pathenum.event) -> e.e_uid = g.g_uid)
                         gi.gi_path.p_events
                     with
                     | Some e -> e.e_pp
                     | None -> -1)
                   group)
            in
            if not (Hashtbl.mem seen_groups key) then begin
              stats.groups_checked <- stats.groups_checked + 1;
              let problem = { Constraints.combo; group; pset; prims } in
              stats.solver_calls <- stats.solver_calls + 1;
              match Constraints.solve ?should_stop problem with
              | Constraints.Cannot_block -> ()
              | Constraints.Blocks witness ->
                  Hashtbl.add seen_groups key ();
                  let blocked =
                    List.map
                      (fun (g : Constraints.group_member) ->
                        let gi = List.nth combo g.g_gid in
                        let e =
                          List.find
                            (fun (e : Pathenum.event) -> e.e_uid = g.g_uid)
                            gi.gi_path.p_events
                        in
                        let kind =
                          match e.e_desc with
                          | Sync (Sop (k, _)) -> k
                          | Sync (Sselect _) -> Report.Kselect
                          | _ -> Report.Ksend
                        in
                        {
                          Report.bo_func = e.e_func;
                          bo_pp = e.e_pp;
                          bo_loc = e.e_loc;
                          bo_kind = kind;
                        })
                      group
                  in
                  let involves_mutex =
                    List.exists
                      (fun o ->
                        match Primitives.kind_of prims o with
                        | Some Primitives.Pmutex -> true
                        | _ -> false)
                      pset
                    && List.exists
                         (fun (b : Report.blocked_op) ->
                           b.bo_kind = Report.Klock || b.bo_kind = Report.Kunlock)
                         blocked
                  in
                  bugs :=
                    {
                      Report.channel = c;
                      chan_loc = Alias.creation_loc alias c;
                      blocked;
                      kind =
                        (if involves_mutex then Report.Chan_and_mutex
                         else Report.Chan_only);
                      scope_funcs = scope.funcs;
                      witness;
                      combination_id = combo_id;
                    }
                    :: !bugs
            end)
          groups
      end)
    combos;
    (List.rev !bugs, false)
  with Gosmt.Solver.Timeout ->
    stats.solver_timeouts <- stats.solver_timeouts + 1;
    ([], true)

(* A root primitive skipped because its channel blew the per-channel
   solver budget.  Surfaced to callers so they can emit a warning. *)
type skipped = { sk_obj : Alias.obj; sk_loc : Minigo.Loc.t option }

(* Canonical order for the final bug list: creation site of the channel,
   then the (sorted) program points of the blocked ops, then the
   combination id.  Everything in the key is schedule-independent, so the
   report is byte-identical however the per-channel work was scheduled. *)
let bug_order_key (b : Report.bmoc_bug) =
  ( (match b.Report.chan_loc with
    | Some l -> Minigo.Loc.to_string l
    | None -> ""),
    List.sort compare (List.map (fun o -> o.Report.bo_pp) b.Report.blocked),
    b.Report.combination_id )

(* Detect BMOC bugs across the whole program, fanning the per-root
   [detect_channel] calls out over [pool].  Each worker gets a private
   stats record (and, inside [Constraints.solve], its own scratch SAT
   solver); results are merged in canonical root order and the final list
   sorted by location, so jobs=1 and jobs=N produce identical output. *)
let detect_ext ?(cfg = default_config) ?(pool = Pool.sequential)
    (prog : Ir.program) : Report.bmoc_bug list * stats * skipped list =
  let stats = new_stats () in
  let alias = Alias.analyse prog in
  let cg = Callgraph.build ~alias prog in
  let prims = Primitives.collect prog alias in
  let dis = Disentangle.build prims cg in
  let roots =
    List.filter
      (function Alias.Achan _ -> true | _ -> false)
      (Primitives.channels prims)
    @ (* with the §6 WaitGroup extension on, WaitGroups are analysed as
         root primitives of their own, like channels *)
    (if cfg.path_cfg.model_waitgroup then
       List.filter
         (fun obj -> not (Disentangle.rooted_external obj))
         (Hashtbl.fold
            (fun obj kind acc ->
              if kind = Primitives.Pwaitgroup then obj :: acc else acc)
            prims.kinds [])
     else [])
  in
  (* canonical root order: structural compare is deterministic and
     independent of Hashtbl iteration order (the WaitGroup fold above) *)
  let roots = List.sort_uniq compare roots in
  (* Warm the scope cache sequentially: [Disentangle.scope_of] memoizes on
     miss (WaitGroup roots are not precomputed by [build]), and that table
     must not be written to from several domains at once. *)
  List.iter (fun c -> ignore (Disentangle.scope_of dis c)) roots;
  let per_root =
    Pool.map ~pool
      (fun c ->
        let st = new_stats () in
        let found, timed_out =
          detect_channel ~cfg ~prims ~dis ~cg ~alias ~prog ~stats:st c
        in
        (c, found, st, timed_out))
      roots
  in
  let bugs = ref [] in
  let skips = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (c, found, st, timed_out) ->
      add_stats stats st;
      if timed_out then
        skips := { sk_obj = c; sk_loc = Alias.creation_loc alias c } :: !skips;
      List.iter
        (fun (b : Report.bmoc_bug) ->
          let key =
            List.sort compare (List.map (fun o -> o.Report.bo_pp) b.blocked)
          in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            bugs := b :: !bugs
          end)
        found)
    per_root;
  let bugs =
    List.sort
      (fun a b -> compare (bug_order_key a) (bug_order_key b))
      (List.rev !bugs)
  in
  (bugs, stats, List.rev !skips)

(* Detect BMOC bugs across the whole program. *)
let detect ?cfg ?pool (prog : Ir.program) : Report.bmoc_bug list * stats =
  let bugs, stats, _ = detect_ext ?cfg ?pool prog in
  (bugs, stats)
