module Ir = Goir.Ir
module Alias = Goanalysis.Alias
module Callgraph = Goanalysis.Callgraph
module Pool = Goengine.Pool
module Clock = Goengine.Clock
module M = Goobs.Metrics
module Trace = Goobs.Trace

(* The BMOC detector (paper Algorithm 1).

   For every channel: compute its scope and Pset (disentangling), collect
   the goroutines active in the scope, enumerate path combinations,
   compute suspicious groups, and hand each (combination, group) pair to
   the constraint system.  A satisfiable ΦR ∧ ΦB is a detected blocking
   misuse-of-channel bug. *)

type config = {
  path_cfg : Pathenum.config;
  max_combos : int;
  max_goroutines : int;
  max_groups : int;          (* per combination *)
  max_group_size : int;
  disentangle : bool;        (* E5 ablation knob *)
  solve_cache : bool;        (* per-channel verdict cache (memory tier) *)
  cache_dir : string option; (* optional persistent tier for the cache *)
  retry_rungs : int;
      (* degradation-ladder depth: how many times a channel that blew its
         [solver_timeout_ms] budget is retried at reduced path/combination
         bounds (the paper's own knobs) before the skip warning is
         emitted.  Only consulted when a budget is set — the clean path
         without a budget is untouched. *)
}

let default_config =
  {
    path_cfg = Pathenum.default_config;
    max_combos = 128;
    max_goroutines = 6;
    max_groups = 64;
    max_group_size = 2;
    disentangle = true;
    solve_cache = true;
    (* the CLI re-reads the variable itself for --cache-dir's default;
       this binding is evaluated once at module initialisation *)
    cache_dir = Sys.getenv_opt "GCATCH_CACHE_DIR";
    retry_rungs = 2;
  }

(* Detector statistics, served from the metrics registry: [detect_ext]
   accumulates per-channel counts into "bmoc.*" counters and returns
   this record as a read-only snapshot of that run (the field names are
   the registry names minus the "bmoc." prefix). *)
type stats = {
  mutable channels_analysed : int;
  mutable combinations : int;
  mutable groups_checked : int;
  mutable solver_calls : int;
  mutable total_path_events : int;
  mutable constraints_hint : int; (* micro-ops considered, a proxy *)
  mutable solver_timeouts : int;  (* channels skipped on budget exhaustion *)
}

(* Per-channel working counters: owned by the single domain analysing
   that channel, so plain mutable ints — the registry is only touched
   once per channel, keeping the solver loop free of atomics. *)
type chan_stats = {
  mutable c_combinations : int;
  mutable c_groups_checked : int;
  mutable c_solver_calls : int;
  mutable c_path_events : int;
  mutable c_constraints_hint : int;
  mutable c_sat_conflicts : int;
  mutable c_sat_decisions : int;
  mutable c_sat_propagations : int;
  mutable c_theory_conflicts : int;
  mutable c_sat_learnts : int;
  mutable c_sat_restarts : int;
  mutable c_sat_db_reductions : int;
  mutable c_paths_deduped : int;
}

let new_chan_stats () =
  {
    c_combinations = 0;
    c_groups_checked = 0;
    c_solver_calls = 0;
    c_path_events = 0;
    c_constraints_hint = 0;
    c_sat_conflicts = 0;
    c_sat_decisions = 0;
    c_sat_propagations = 0;
    c_theory_conflicts = 0;
    c_sat_learnts = 0;
    c_sat_restarts = 0;
    c_sat_db_reductions = 0;
    c_paths_deduped = 0;
  }

(* The per-channel counter snapshot as stored in (and replayed from) the
   solve cache.  Replaying the original run's counters on a hit keeps
   the run-registry metrics byte-identical between warm and cold runs. *)
let stats_snapshot (cst : chan_stats) : (string * int) list =
  [
    ("combinations", cst.c_combinations);
    ("groups_checked", cst.c_groups_checked);
    ("solver_calls", cst.c_solver_calls);
    ("path_events", cst.c_path_events);
    ("constraints_hint", cst.c_constraints_hint);
    ("sat_conflicts", cst.c_sat_conflicts);
    ("sat_decisions", cst.c_sat_decisions);
    ("sat_propagations", cst.c_sat_propagations);
    ("theory_conflicts", cst.c_theory_conflicts);
    ("sat_learnts", cst.c_sat_learnts);
    ("sat_restarts", cst.c_sat_restarts);
    ("sat_db_reductions", cst.c_sat_db_reductions);
    ("paths_deduped", cst.c_paths_deduped);
  ]

let stats_restore (cst : chan_stats) (l : (string * int) list) =
  let g k = Option.value (List.assoc_opt k l) ~default:0 in
  cst.c_combinations <- g "combinations";
  cst.c_groups_checked <- g "groups_checked";
  cst.c_solver_calls <- g "solver_calls";
  cst.c_path_events <- g "path_events";
  cst.c_constraints_hint <- g "constraints_hint";
  cst.c_sat_conflicts <- g "sat_conflicts";
  cst.c_sat_decisions <- g "sat_decisions";
  cst.c_sat_propagations <- g "sat_propagations";
  cst.c_theory_conflicts <- g "theory_conflicts";
  cst.c_sat_learnts <- g "sat_learnts";
  cst.c_sat_restarts <- g "sat_restarts";
  cst.c_sat_db_reductions <- g "sat_db_reductions";
  cst.c_paths_deduped <- g "paths_deduped"

(* Blocking-capable candidate events for suspicious groups. *)
let candidates (pset : Alias.obj list) (gi : Pathenum.goroutine_instance) :
    Pathenum.event list =
  List.filter
    (fun (e : Pathenum.event) ->
      match e.e_desc with
      | Sync
          (Sop
             ( (Report.Ksend | Report.Krecv | Report.Klock | Report.Kwg_wait),
               objs )) ->
          List.exists (fun o -> List.mem o pset) objs
      | Sync (Sselect { arms; has_default = false; _ }) ->
          (* a select is a candidate only when every arm is over Pset
             primitives — otherwise its blocking cannot be decided in this
             scope (the paper's running example excludes the parent's
             select for exactly this reason) *)
          arms <> []
          && List.for_all
               (fun (_, objs) ->
                 objs <> [] && List.for_all (fun o -> List.mem o pset) objs)
               arms
      | _ -> false)
    gi.gi_path.p_events

(* Ops that could unblock each other must not share a group: a send and a
   receive on the same object. *)
let mutually_unblocking (a : Pathenum.event) (b : Pathenum.event) : bool =
  let ops_of (e : Pathenum.event) =
    match e.e_desc with
    | Sync (Sop (k, objs)) -> [ (k, objs) ]
    | Sync (Sselect { arms; _ }) -> arms
    | _ -> []
  in
  List.exists
    (fun (ka, oa) ->
      List.exists
        (fun (kb, ob) ->
          let crossing =
            match (ka, kb) with
            | Report.Ksend, Report.Krecv | Report.Krecv, Report.Ksend -> true
            | _ -> false
          in
          crossing && List.exists (fun o -> List.mem o ob) oa)
        (ops_of b))
    (ops_of a)

(* All suspicious groups of a combination, sizes 1..max_group_size, at
   most one op per goroutine. *)
let suspicious_groups cfg pset (combo : Pathenum.combination) :
    Constraints.group_member list list =
  let per_g =
    List.map (fun gi -> (gi, candidates pset gi)) combo
    |> List.filter (fun (_, cs) -> cs <> [])
  in
  let singles =
    List.concat_map
      (fun ((gi : Pathenum.goroutine_instance), cs) ->
        List.map
          (fun (e : Pathenum.event) ->
            [ { Constraints.g_gid = gi.gi_id; g_uid = e.e_uid } ])
          cs)
      per_g
  in
  let pairs =
    if cfg.max_group_size < 2 then []
    else
      List.concat_map
        (fun ((g1 : Pathenum.goroutine_instance), cs1) ->
          List.concat_map
            (fun ((g2 : Pathenum.goroutine_instance), cs2) ->
              if g1.gi_id >= g2.gi_id then []
              else
                List.concat_map
                  (fun e1 ->
                    List.filter_map
                      (fun e2 ->
                        if mutually_unblocking e1 e2 then None
                        else
                          Some
                            [
                              { Constraints.g_gid = g1.gi_id; g_uid = e1.Pathenum.e_uid };
                              { Constraints.g_gid = g2.gi_id; g_uid = e2.Pathenum.e_uid };
                            ])
                      cs2)
                  cs1)
            per_g)
        per_g
  in
  let all = singles @ pairs in
  if List.length all > cfg.max_groups then
    List.filteri (fun i _ -> i < cfg.max_groups) all
  else all

(* Detect BMOC bugs for one channel.  Returns the bugs plus a flag saying
   whether the channel blew its [solver_timeout_ms] budget — in which case
   its (partial, schedule-dependent) findings are discarded so the output
   stays deterministic, and the caller reports the channel as skipped.

   The per-run [enum_memo] shares path enumerations between channels
   whose (root, scope, Pset, config) coincide — under the E5 ablation
   every channel of an app walks the same whole-program scope, so the
   CFG walk happens once instead of once per channel.  With the solve
   cache on, the canonical problem is fingerprinted after enumeration
   and feasibility filtering; a hit replays the stored bug list and
   counter snapshot without touching the solver. *)
let detect_channel ?(cfg = default_config) ~(prims : Primitives.t)
    ~(dis : Disentangle.t) ~(cg : Callgraph.t) ~(alias : Alias.t)
    ~(prog : Ir.program) ~(cst : chan_stats)
    ~(enum_memo : Pathenum.combination list Goengine.Memo.t) (c : Alias.obj) :
    Report.bmoc_bug list * bool =
  let on_stats ~conflicts ~decisions ~propagations ~theory_conflicts ~learnts
      ~restarts ~reductions =
    cst.c_sat_conflicts <- cst.c_sat_conflicts + conflicts;
    cst.c_sat_decisions <- cst.c_sat_decisions + decisions;
    cst.c_sat_propagations <- cst.c_sat_propagations + propagations;
    cst.c_theory_conflicts <- cst.c_theory_conflicts + theory_conflicts;
    cst.c_sat_learnts <- cst.c_sat_learnts + learnts;
    cst.c_sat_restarts <- cst.c_sat_restarts + restarts;
    cst.c_sat_db_reductions <- cst.c_sat_db_reductions + reductions
  in
  (* The solver's conflict poll doubles as the scheduler yield point: a
     long-running solve inside a scheduled task periodically gives the
     domain back instead of wedging it.  The yield is a no-op outside
     the scheduler, and the returned deadline answer is unaffected, so
     verdicts stay schedule-independent. *)
  let should_stop =
    match cfg.path_cfg.Pathenum.solver_timeout_ms with
    | None ->
        Some
          (fun () ->
            Goengine.Pool.yield ();
            false)
    | Some ms ->
        let deadline = Clock.now_s () +. (float_of_int ms /. 1000.) in
        Some
          (fun () ->
            Goengine.Pool.yield ();
            Clock.now_s () > deadline)
  in
  let poll_every = cfg.path_cfg.Pathenum.solver_poll_conflicts in
  let scope, pset =
    if cfg.disentangle then (Disentangle.scope_of dis c, Disentangle.pset dis c)
    else begin
      (* ablation: whole-program scope from main with every primitive *)
      let root = match prog.Ir.main with Some m -> m | None -> (Disentangle.scope_of dis c).root in
      let funcs =
        Hashtbl.fold (fun f () acc -> f :: acc) (Callgraph.reachable_from cg root) []
      in
      ( { Disentangle.root; funcs = List.sort String.compare funcs },
        Primitives.channels prims @ Primitives.mutexes prims )
    end
  in
  let combos =
    let key =
      Solve_cache.fingerprint
        ( scope.root,
          scope.funcs,
          List.sort_uniq compare pset,
          cfg.path_cfg,
          cfg.max_combos,
          cfg.max_goroutines )
    in
    match
      Goengine.Memo.find_or_compute enum_memo key (fun () ->
          let ctx =
            {
              Pathenum.prog;
              alias;
              cg;
              pset;
              scope_funcs = scope.funcs;
              cfg = cfg.path_cfg;
              touch_memo = Hashtbl.create 16;
            }
          in
          ( Pathenum.combinations ctx ~root:scope.root
              ~max_combos:cfg.max_combos ~max_goroutines:cfg.max_goroutines,
            true ))
    with
    | `Hit cs | `Computed cs -> cs
  in
  (* feasibility filter, then (optionally) canonical projection dedup —
     in that order: dedup may keep an infeasible twin only when the twin
     set contains no feasible member worth solving *)
  let live =
    List.mapi (fun i cb -> (i, cb)) combos
    |> List.filter (fun (_, cb) ->
           (not (Pathenum.has_conflicts cb)) && Pathenum.has_blocking_op cb)
  in
  let live, ndeduped =
    if cfg.path_cfg.Pathenum.dedup_paths then Pathenum.dedup_combinations live
    else (live, 0)
  in
  cst.c_paths_deduped <- ndeduped;
  (* Fingerprint of the canonical per-channel problem: the scope, the
     surviving combinations, the kind/buffer/Pset facts of every
     primitive they mention, and every knob that can change a verdict
     (the path config includes the solver budget and the dedup switch).
     The root channel's *identity* is deliberately absent: the problem
     the solver sees is fully determined by scope + Pset + combinations,
     so two channels with the same disentangled scope — every channel of
     an app under the E5 ablation — share one cache entry.  The only
     channel-dependent parts of a bug report (the [channel]/[chan_loc]
     tags) are rewritten on replay below. *)
  let fp =
    if not cfg.solve_cache then None
    else
      let all_objs =
        let tbl = Hashtbl.create 64 in
        let note o = Hashtbl.replace tbl o () in
        List.iter
          (fun (_, combo) ->
            List.iter
              (fun (gi : Pathenum.goroutine_instance) ->
                List.iter
                  (fun (e : Pathenum.event) ->
                    match e.e_desc with
                    | Sync (Sop (_, objs)) | Sync (Swg_add (objs, _)) ->
                        List.iter note objs
                    | Sync (Sselect { arms; _ }) ->
                        List.iter (fun (_, objs) -> List.iter note objs) arms
                    | Spawn _ | Branch _ -> ())
                  gi.gi_path.p_events)
              combo)
          live;
        List.iter note pset;
        List.sort compare (Hashtbl.fold (fun o () acc -> o :: acc) tbl [])
      in
      let obj_info =
        List.map
          (fun o ->
            ( o,
              Primitives.kind_of prims o,
              Primitives.buffer_size prims o,
              List.mem o pset ))
          all_objs
      in
      Some
        (Solve_cache.fingerprint
           ( "bmoc/1",
             scope.root,
             scope.funcs,
             obj_info,
             live,
             cfg.path_cfg,
             (cfg.max_combos, cfg.max_goroutines, cfg.max_groups,
              cfg.max_group_size) ))
  in
  let run_solve () : Report.bmoc_bug list * bool =
  let session = Constraints.create_session () in
  let bugs = ref [] in
  let seen_groups = Hashtbl.create 16 in
  try
    (* "solver" fault site: a crash raises out to the per-channel
       boundary in [detect_full]; a timeout exercises the existing
       budget path (and hence the degradation ladder) *)
    (match Goengine.Faults.fire ~site:"solver" ~key:(Alias.obj_str c) () with
    | None -> ()
    | Some Goengine.Faults.Stall ->
        (* yield-aware: a stalled solver site must not wedge its domain *)
        Goengine.Pool.sleep_yielding Goengine.Faults.stall_s
    | Some Goengine.Faults.Timeout -> raise Gosmt.Solver.Timeout
    | Some _ ->
        raise (Goengine.Faults.Injected ("solver", Alias.obj_str c)));
    List.iter
    (fun (combo_id, combo) ->
      begin
        cst.c_combinations <- cst.c_combinations + 1;
        List.iter
          (fun gi ->
            cst.c_path_events <-
              cst.c_path_events + List.length gi.Pathenum.gi_path.p_events)
          combo;
        let groups = suspicious_groups cfg pset combo in
        List.iter
          (fun group ->
            (* dedupe by the static pps of the group ops *)
            let key =
              List.sort compare
                (List.map
                   (fun (g : Constraints.group_member) ->
                     let gi = List.nth combo g.g_gid in
                     match
                       List.find_opt
                         (fun (e : Pathenum.event) -> e.e_uid = g.g_uid)
                         gi.gi_path.p_events
                     with
                     | Some e -> e.e_pp
                     | None -> -1)
                   group)
            in
            if not (Hashtbl.mem seen_groups key) then begin
              cst.c_groups_checked <- cst.c_groups_checked + 1;
              let problem = { Constraints.combo; group; pset; prims } in
              cst.c_solver_calls <- cst.c_solver_calls + 1;
              match
                Constraints.solve_incr session ?should_stop ~poll_every
                  ~on_stats problem
              with
              | Constraints.Cannot_block -> ()
              | Constraints.Blocks witness ->
                  Hashtbl.add seen_groups key ();
                  let blocked =
                    List.map
                      (fun (g : Constraints.group_member) ->
                        let gi = List.nth combo g.g_gid in
                        let e =
                          List.find
                            (fun (e : Pathenum.event) -> e.e_uid = g.g_uid)
                            gi.gi_path.p_events
                        in
                        let kind =
                          match e.e_desc with
                          | Sync (Sop (k, _)) -> k
                          | Sync (Sselect _) -> Report.Kselect
                          | _ -> Report.Ksend
                        in
                        {
                          Report.bo_func = e.e_func;
                          bo_pp = e.e_pp;
                          bo_loc = e.e_loc;
                          bo_kind = kind;
                        })
                      group
                  in
                  let involves_mutex =
                    List.exists
                      (fun o ->
                        match Primitives.kind_of prims o with
                        | Some Primitives.Pmutex -> true
                        | _ -> false)
                      pset
                    && List.exists
                         (fun (b : Report.blocked_op) ->
                           b.bo_kind = Report.Klock || b.bo_kind = Report.Kunlock)
                         blocked
                  in
                  bugs :=
                    {
                      Report.channel = c;
                      chan_loc = Alias.creation_loc alias c;
                      blocked;
                      kind =
                        (if involves_mutex then Report.Chan_and_mutex
                         else Report.Chan_only);
                      scope_funcs = scope.funcs;
                      witness;
                      combination_id = combo_id;
                    }
                    :: !bugs
            end)
          groups
      end)
    live;
    (List.rev !bugs, false)
  with Gosmt.Solver.Timeout -> ([], true)
  in
  match fp with
  | None -> run_solve ()
  | Some fp ->
      let timed_out = ref false in
      let e, _cached =
        Solve_cache.find_or_compute ?dir:cfg.cache_dir fp (fun () ->
            let found, timed = run_solve () in
            timed_out := timed;
            (* never cache a budget-truncated channel: its (empty)
               verdict embeds a wall-clock accident, not a property of
               the program *)
            ( { Solve_cache.e_bugs = found; e_stats = stats_snapshot cst },
              not timed ))
      in
      if !timed_out then ([], true)
      else begin
        (* On a replay [cst] was untouched, so restore the original
           solve's counters; after a fresh compute this restores the
           snapshot just taken — an identity.  Rewrite the only
           channel-dependent fields of each bug to this channel. *)
        stats_restore cst e.Solve_cache.e_stats;
        ( List.map
            (fun (b : Report.bmoc_bug) ->
              {
                b with
                Report.channel = c;
                chan_loc = Alias.creation_loc alias c;
              })
            e.Solve_cache.e_bugs,
          false )
      end

(* ------------------------------------------- degradation ladder ------ *)

(* Rung [i] of the ladder: the paper's own scalability knobs — the
   per-goroutine path bound and the combination bound — reduced by 4x
   per rung (floored so the problem stays non-trivial). *)
let rung_cfg cfg i =
  {
    cfg with
    max_combos = max 4 (cfg.max_combos lsr (2 * i));
    path_cfg =
      {
        cfg.path_cfg with
        Pathenum.max_paths = max 4 (cfg.path_cfg.Pathenum.max_paths lsr (2 * i));
      };
  }

(* [detect_channel] plus the degradation ladder: a channel that blows its
   solver budget is retried at progressively reduced bounds before being
   given up on.  Returns the bugs, whether the channel is finally skipped,
   and how many retry rungs were consumed (0 = solved at full bounds; a
   successful retry is a *degraded but present* verdict — fewer paths
   explored — which beats no verdict at all).  Without a budget there is
   nothing to ladder off: the clean path is one plain call. *)
let detect_channel_ladder ~cfg ~prims ~dis ~cg ~alias ~prog ~cst ~enum_memo c :
    Report.bmoc_bug list * bool * int =
  (* Each rung attempt runs as its own scheduled task: under the effects
     scheduler a rung that stalls in the solver suspends at its yield
     points instead of pinning the domain, and the awaiting ladder frame
     itself is stealable.  Outside the scheduler [fork] degenerates to
     an immediate call, so the ladder works identically in sequential
     runs.  Rungs stay *sequential decisions* (fork-then-await one at a
     time, no speculation): whether rung [i+1] runs depends on rung
     [i]'s verdict, which keeps solver-call counters and the consumed
     rung count schedule-independent. *)
  let attempt cfg =
    Goengine.Pool.await
      (Goengine.Pool.fork (fun () ->
           detect_channel ~cfg ~prims ~dis ~cg ~alias ~prog ~cst ~enum_memo c))
  in
  let found, timed = attempt cfg in
  if
    (not timed)
    || cfg.path_cfg.Pathenum.solver_timeout_ms = None
    || cfg.retry_rungs <= 0
  then (found, timed, 0)
  else
    let rec retry i =
      if i > cfg.retry_rungs then ([], true, cfg.retry_rungs)
      else
        let found, timed = attempt (rung_cfg cfg i) in
        if timed then retry (i + 1) else (found, false, i)
    in
    retry 1

(* A root primitive skipped because its channel blew the per-channel
   solver budget.  Surfaced to callers so they can emit a warning; the
   extra fields feed the skip diagnostic: how long the channel actually
   ran, what the budget was, and how many path events were enumerated
   before it was cut off. *)
type skipped = {
  sk_obj : Alias.obj;
  sk_loc : Minigo.Loc.t option;
  sk_elapsed_ms : float;
  sk_budget_ms : int option;
  sk_ops : int; (* path events enumerated for the channel *)
}

(* Canonical order for the final bug list: creation site of the channel,
   then the (sorted) program points of the blocked ops, then the
   combination id.  Everything in the key is schedule-independent, so the
   report is byte-identical however the per-channel work was scheduled. *)
let bug_order_key (b : Report.bmoc_bug) =
  ( (match b.Report.chan_loc with
    | Some l -> Minigo.Loc.to_string l
    | None -> ""),
    List.sort compare (List.map (fun o -> o.Report.bo_pp) b.Report.blocked),
    b.Report.combination_id )

(* Snapshot the "bmoc.*" counters of a run-local registry into the
   legacy [stats] record shape. *)
let stats_of (reg : M.t) : stats =
  let c name = M.value (M.counter reg ("bmoc." ^ name)) in
  {
    channels_analysed = c "channels_analysed";
    combinations = c "combinations";
    groups_checked = c "groups_checked";
    solver_calls = c "solver_calls";
    total_path_events = c "total_path_events";
    constraints_hint = c "constraints_hint";
    solver_timeouts = c "solver_timeouts";
  }

(* A per-channel supervision note: something other than a plain verdict
   happened at the channel's fault boundary.  Callers (the bmoc pass)
   render these as Warning diagnostics. *)
type chan_note = {
  cn_obj : Alias.obj;
  cn_loc : Minigo.Loc.t option;
  cn_note :
    [ `Faulted of string (* boundary caught an exception; verdict dropped *)
    | `Recovered of int (* ladder rung at which the retry succeeded *)
    | `Pressure of string (* deadline/heap watchdog: not started *) ];
}

type full = {
  f_bugs : Report.bmoc_bug list;
  f_stats : stats;
  f_skipped : skipped list;
  f_notes : chan_note list;
}

(* What one pool task reports back for its root. *)
type chan_outcome =
  | Odone of Report.bmoc_bug list * bool * int (* bugs, timed_out, rungs *)
  | Ofaulted of string
  | Opressure of string

(* Detect BMOC bugs across the whole program, fanning the per-root
   [detect_channel_ladder] calls out over [pool].  Each worker
   accumulates into a private per-channel record (and, inside
   [Constraints.solve], its own scratch SAT solver); the per-channel
   counts are folded into a run-local metrics registry in canonical root
   order — sums commute, so jobs=1 and jobs=N produce identical metrics
   — and the final bug list is sorted by location, so the output is
   schedule-independent too.  The run registry is merged into [metrics]
   (default: the process-wide registry) and snapshotted as the returned
   [stats].

   Every root runs behind its own fault boundary *inside* the pool task:
   an exception while solving one channel becomes a [`Faulted] note (and
   a health.degraded count) instead of aborting the batch, and a channel
   that would start under watchdog pressure is skipped up front, so a
   tripped deadline flushes everything already gathered. *)
let detect_full ?(cfg = default_config) ?(pool = Pool.sequential)
    ?(metrics = M.default) (prog : Ir.program) : full =
  let reg = M.create () in
  let alias = Alias.analyse prog in
  let cg = Callgraph.build ~alias prog in
  let prims = Primitives.collect prog alias in
  let dis = Disentangle.build prims cg in
  let roots =
    List.filter
      (function Alias.Achan _ -> true | _ -> false)
      (Primitives.channels prims)
    @ (* with the §6 WaitGroup extension on, WaitGroups are analysed as
         root primitives of their own, like channels *)
    (if cfg.path_cfg.model_waitgroup then
       List.filter
         (fun obj -> not (Disentangle.rooted_external obj))
         (Hashtbl.fold
            (fun obj kind acc ->
              if kind = Primitives.Pwaitgroup then obj :: acc else acc)
            prims.kinds [])
     else [])
  in
  (* canonical root order: structural compare is deterministic and
     independent of Hashtbl iteration order (the WaitGroup fold above) *)
  let roots = List.sort_uniq compare roots in
  (* Warm the scope cache sequentially: [Disentangle.scope_of] memoizes on
     miss (WaitGroup roots are not precomputed by [build]), and that table
     must not be written to from several domains at once. *)
  List.iter (fun c -> ignore (Disentangle.scope_of dis c)) roots;
  (* one enumeration memo per run: channels sharing a (root, scope, Pset)
     — always the case under the ablation scope — walk the CFG once *)
  let enum_memo = Goengine.Memo.create () in
  (* tiny channel batches run inline: forking per channel only pays off
     when there are enough of them to keep several domains busy, and on
     small inputs the fork/await overhead was a measured net slowdown.
     Derived from the batch size alone, never the job count. *)
  let grain = match List.length roots with n when n <= 4 -> n | _ -> 1 in
  let per_root =
    Pool.map ~pool ~grain
      (fun c ->
        Trace.with_span ~name:"bmoc.channel"
          ~args:[ ("channel", Alias.obj_str c) ]
          (fun () ->
            let cst = new_chan_stats () in
            let t0 = Clock.now_s () in
            let outcome =
              (* pressure pre-flight, then the per-channel fault
                 boundary; a degraded channel resets its counters so the
                 folded run metrics never embed a half-finished solve *)
              match Goengine.Supervise.pressure () with
              | Some reason -> Opressure reason
              | None -> (
                  match
                    detect_channel_ladder ~cfg ~prims ~dis ~cg ~alias ~prog
                      ~cst ~enum_memo c
                  with
                  | found, timed_out, rungs -> Odone (found, timed_out, rungs)
                  | exception e ->
                      stats_restore cst [];
                      Ofaulted (Printexc.to_string e))
            in
            let elapsed_ms = 1000.0 *. Clock.elapsed_since t0 in
            Trace.set_args
              [
                ("solver_calls", string_of_int cst.c_solver_calls);
                ("sat_conflicts", string_of_int cst.c_sat_conflicts);
                ("sat_decisions", string_of_int cst.c_sat_decisions);
                ("path_events", string_of_int cst.c_path_events);
                ("elapsed_ms", Printf.sprintf "%.1f" elapsed_ms);
                ( "outcome",
                  match outcome with
                  | Odone (_, true, _) -> "timed_out"
                  | Odone (_, _, r) when r > 0 -> "recovered"
                  | Odone _ -> "ok"
                  | Ofaulted _ -> "faulted"
                  | Opressure _ -> "pressure-skipped" );
              ];
            (c, outcome, cst, elapsed_ms)))
      roots
  in
  let bugs = ref [] in
  let skips = ref [] in
  let notes = ref [] in
  let seen = Hashtbl.create 16 in
  let bump name n = if n <> 0 then M.add (M.counter reg ("bmoc." ^ name)) n in
  let health k = M.incr (M.counter reg k) in
  let chan_ms = M.histogram reg "bmoc.channel_solve_ms" in
  List.iter
    (fun (c, outcome, cst, elapsed_ms) ->
      health Goengine.Supervise.h_attempted;
      match outcome with
      | Opressure reason ->
          health Goengine.Supervise.h_skipped;
          notes :=
            {
              cn_obj = c;
              cn_loc = Alias.creation_loc alias c;
              cn_note = `Pressure reason;
            }
            :: !notes
      | Ofaulted detail ->
          health Goengine.Supervise.h_degraded;
          Goobs.Log.warn
            ~kv:[ ("channel", Alias.obj_str c); ("exn", detail) ]
            "channel degraded; analysis continues";
          notes :=
            {
              cn_obj = c;
              cn_loc = Alias.creation_loc alias c;
              cn_note = `Faulted detail;
            }
            :: !notes
      | Odone (found, timed_out, rungs) ->
          if timed_out then health Goengine.Supervise.h_skipped
          else health Goengine.Supervise.h_ok;
          if rungs > 0 then health Goengine.Supervise.h_retried;
          if rungs > 0 && not timed_out then
            notes :=
              {
                cn_obj = c;
                cn_loc = Alias.creation_loc alias c;
                cn_note = `Recovered rungs;
              }
              :: !notes;
          bump "channels_analysed" 1;
          bump "combinations" cst.c_combinations;
          bump "groups_checked" cst.c_groups_checked;
          bump "solver_calls" cst.c_solver_calls;
          bump "total_path_events" cst.c_path_events;
          bump "constraints_hint" cst.c_constraints_hint;
          bump "sat_conflicts" cst.c_sat_conflicts;
          bump "sat_decisions" cst.c_sat_decisions;
          bump "sat_propagations" cst.c_sat_propagations;
          bump "theory_conflicts" cst.c_theory_conflicts;
          bump "paths_deduped" cst.c_paths_deduped;
          (* SAT-engine counters live under their own prefix *)
          let bump_raw name n = if n <> 0 then M.add (M.counter reg name) n in
          bump_raw "sat.learnt_clauses" cst.c_sat_learnts;
          bump_raw "sat.restarts" cst.c_sat_restarts;
          bump_raw "sat.db_reductions" cst.c_sat_db_reductions;
          if timed_out then bump "solver_timeouts" 1;
          M.observe chan_ms elapsed_ms;
          Goobs.Profile.note_channel
            {
              Goobs.Profile.cs_channel = Alias.obj_str c;
              cs_elapsed_ms = elapsed_ms;
              cs_solver_calls = cst.c_solver_calls;
              cs_sat_conflicts = cst.c_sat_conflicts;
              cs_sat_decisions = cst.c_sat_decisions;
              cs_sat_propagations = cst.c_sat_propagations;
              cs_path_events = cst.c_path_events;
              cs_timed_out = timed_out;
            };
          if timed_out then
            skips :=
              {
                sk_obj = c;
                sk_loc = Alias.creation_loc alias c;
                sk_elapsed_ms = elapsed_ms;
                sk_budget_ms = cfg.path_cfg.Pathenum.solver_timeout_ms;
                sk_ops = cst.c_path_events;
              }
              :: !skips;
          List.iter
            (fun (b : Report.bmoc_bug) ->
              let key =
                List.sort compare (List.map (fun o -> o.Report.bo_pp) b.blocked)
              in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                bugs := b :: !bugs
              end)
            found)
    per_root;
  let bugs =
    List.sort
      (fun a b -> compare (bug_order_key a) (bug_order_key b))
      (List.rev !bugs)
  in
  let stats = stats_of reg in
  M.merge_into ~dst:metrics reg;
  {
    f_bugs = bugs;
    f_stats = stats;
    f_skipped = List.rev !skips;
    f_notes = List.rev !notes;
  }

(* The historical 3-tuple interface (tests and the driver use it). *)
let detect_ext ?cfg ?pool ?metrics (prog : Ir.program) :
    Report.bmoc_bug list * stats * skipped list =
  let r = detect_full ?cfg ?pool ?metrics prog in
  (r.f_bugs, r.f_stats, r.f_skipped)

(* Detect BMOC bugs across the whole program. *)
let detect ?cfg ?pool (prog : Ir.program) : Report.bmoc_bug list * stats =
  let bugs, stats, _ = detect_ext ?cfg ?pool prog in
  (bugs, stats)
