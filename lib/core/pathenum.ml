module Ir = Goir.Ir
module Alias = Goanalysis.Alias
module Callgraph = Goanalysis.Callgraph

(* Path enumeration (paper §3.3).

   For every goroutine in a channel's analysis scope, GCatch enumerates
   its execution paths with an inter-procedural depth-first search:

   - callees that perform no operation on any primitive in Pset are
     skipped entirely;
   - loops whose trip count is not statically known are unrolled at most
     [loop_bound] times (2, like the paper), a documented source of both
     false positives and false negatives;
   - paths whose interpreted branch conditions are statically false are
     filtered, and combinations taking conflicting read-only conditions
     are discarded later by {!conflicts}. *)

type sync_desc =
  | Sop of Report.op_kind * Alias.obj list
  | Swg_add of Alias.obj list * int option
      (* Add with its static delta; None when not a constant, which makes
         the owning WaitGroup unmodelable *)
  | Sselect of {
      arms : (Report.op_kind * Alias.obj list) list;
      chosen : int option; (* None = the default clause was taken *)
      has_default : bool;
    }

type edesc =
  | Sync of sync_desc
  | Spawn of string * Ir.operand list
  | Branch of string * bool (* canonical condition text, polarity taken *)

type event = {
  e_uid : int; (* unique within its path *)
  e_pp : Ir.pp;
  e_loc : Minigo.Loc.t;
  e_func : string;
  e_desc : edesc;
}

type path = { p_func : string; p_events : event list }

type config = {
  loop_bound : int;
  max_paths : int;          (* per goroutine *)
  max_call_depth : int;
  max_events : int;         (* per path *)
  max_walk_steps : int;     (* DFS budget; bounds prefix exploration even
                               when pruning keeps complete paths rare *)
  model_waitgroup : bool;
      (* the §6 extension: generate WaitGroup events so the constraint
         system can reason about Add/Done/Wait.  Off by default, like the
         paper (whose coverage study counts WaitGroup bugs as misses). *)
  solver_timeout_ms : int option;
      (* per-channel wall-clock budget for constraint solving; a channel
         that exhausts it is skipped (with a warning diagnostic) rather
         than stalling the whole run.  [None] = no budget. *)
  dedup_paths : bool;
      (* drop combinations whose sync-relevant projection duplicates an
         earlier (feasible) combination before they reach the encoder;
         see [dedup_combinations] for why this cannot lose a verdict *)
  solver_poll_conflicts : int;
      (* how many SAT conflicts between [should_stop] polls.  The poll
         is also the scheduler yield point, so this is the yield
         granularity of a long-running solve: smaller = more responsive
         task switching, larger = less polling overhead. *)
}

let default_config =
  {
    loop_bound = 2;
    max_paths = 48;
    max_call_depth = 5;
    max_events = 400;
    max_walk_steps = 200_000;
    model_waitgroup = false;
    solver_timeout_ms = None;
    dedup_paths = true;
    solver_poll_conflicts = 256;
  }

type ctx = {
  prog : Ir.program;
  alias : Alias.t;
  cg : Callgraph.t;
  pset : Alias.obj list;
  scope_funcs : string list;
  cfg : config;
  (* memo: does the call-subtree of f touch pset? *)
  touch_memo : (string, bool) Hashtbl.t;
}

let place_objs ctx fname p =
  Alias.ObjSet.elements (Alias.objects_of_place ctx.alias fname p)

let relevant_objs ctx fname p =
  List.filter (fun o -> List.mem o ctx.pset) (place_objs ctx fname p)

(* Does function [f] (or anything it calls) operate on a Pset primitive? *)
let rec touches_pset ctx f : bool =
  match Hashtbl.find_opt ctx.touch_memo f with
  | Some b -> b
  | None ->
      Hashtbl.replace ctx.touch_memo f false (* cut recursion *)
      ;
      let result =
        match Ir.find_func ctx.prog f with
        | None -> false
        | Some fn ->
            let direct =
              Ir.fold_insts
                (fun acc (i : Ir.inst) ->
                  acc
                  ||
                  match i.idesc with
                  | Isend (p, _) | Irecv (_, p, _) | Iclose p | Ilock p
                  | Iunlock p ->
                      relevant_objs ctx f p <> []
                  | Igo _ -> true (* spawns matter for GOset discovery *)
                  | _ -> false)
                false fn
              || Array.exists
                   (fun (b : Ir.block) ->
                     match b.term with
                     | Tselect (arms, _, _) ->
                         List.exists
                           (fun (a : Ir.select_arm) ->
                             let p =
                               match a.arm_op with
                               | Arm_recv (p, _) | Arm_send (p, _) -> p
                             in
                             relevant_objs ctx f p <> [])
                           arms
                     | _ -> false)
                   fn.blocks
            in
            direct
            || List.exists
                 (fun (e : Callgraph.edge) ->
                   e.kind = Callgraph.Ecall && touches_pset ctx e.callee)
                 (Callgraph.callees ctx.cg f)
      in
      Hashtbl.replace ctx.touch_memo f result;
      result

(* Variables assigned more than once in a function are not read-only;
   conditions over them are opaque to the feasibility filter (§3.3 only
   interprets conditions over read-only variables and constants). *)
let multi_def_vars (f : Ir.func) : (Ir.var, unit) Hashtbl.t =
  let defs = Hashtbl.create 16 in
  let multi = Hashtbl.create 16 in
  let def v =
    if Hashtbl.mem defs v then Hashtbl.replace multi v ()
    else Hashtbl.add defs v ()
  in
  Ir.iter_insts
    (fun i ->
      match i.idesc with
      | Iassign (v, _) | Ibinop (v, _, _, _) | Iunop (v, _, _)
      | Ifield_load (v, _, _) | Imake_chan (v, _, _) | Imake_struct (v, _) ->
          def v
      | Irecv (Some v, _, _) -> def v
      | Icall (rets, _, _) | Icall_indirect (rets, _, _) -> List.iter def rets
      | _ -> ())
    f;
  multi

(* Canonical text for an interpretable condition; None when opaque or when
   it mentions a non-read-only variable. *)
let cond_text (multi : (Ir.var, unit) Hashtbl.t) (c : Ir.cond) : string option =
  let operand_ok = function
    | Ir.Ovar v -> not (Hashtbl.mem multi v)
    | Ir.Oplace _ -> false
    | Ir.Oconst_int _ | Ir.Oconst_bool _ | Ir.Oconst_str _ | Ir.Oconst_func _
    | Ir.Onil ->
        true
  in
  let rec go = function
    | Ir.Ccmp (op, a, b) ->
        if operand_ok a && operand_ok b then
          Some
            (Printf.sprintf "%s %s %s" (Ir.operand_str a)
               (Minigo.Pretty.binop_str op) (Ir.operand_str b))
        else None
    | Ir.Cnot c -> Option.map (fun s -> "!" ^ s) (go c)
    | Ir.Cvar _ | Ir.Copaque _ -> None
  in
  go c

(* Evaluate a condition over constants; None when it involves variables. *)
let cond_const_value (c : Ir.cond) : bool option =
  let module A = Minigo.Ast in
  let rec go = function
    | Ir.Ccmp (op, Ir.Oconst_int x, Ir.Oconst_int y) ->
        Some
          (match op with
          | A.Eq -> x = y
          | A.Neq -> x <> y
          | A.Lt -> x < y
          | A.Le -> x <= y
          | A.Gt -> x > y
          | A.Ge -> x >= y
          | _ -> true)
    | Ir.Ccmp (op, Ir.Oconst_bool x, Ir.Oconst_bool y) ->
        Some (match op with A.Eq -> x = y | A.Neq -> x <> y | _ -> true)
    | Ir.Cnot c -> Option.map not (go c)
    | _ -> None
  in
  go c

exception Too_many_paths

(* Enumerate execution paths of function [f].  Each path is a list of
   events.  Inlined callees contribute their events in place. *)
let enumerate ctx (fname : string) : path list =
  let paths = ref [] in
  let npaths = ref 0 in
  let uid = ref 0 in
  let multi_memo : (string, (Ir.var, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let multi_of (fn : Ir.func) =
    match Hashtbl.find_opt multi_memo fn.name with
    | Some m -> m
    | None ->
        let m = multi_def_vars fn in
        Hashtbl.replace multi_memo fn.name m;
        m
  in
  let fresh_uid () =
    incr uid;
    !uid
  in
  (* the path count and the per-path event count are threaded through the
     walk incrementally — recomputing [List.length] at every emit/step
     made deep enumerations quadratic *)
  let emit_path evs _nevs =
    paths := { p_func = fname; p_events = List.rev evs } :: !paths;
    incr npaths;
    if !npaths > ctx.cfg.max_paths then raise Too_many_paths
  in
  let walk_steps = ref 0 in
  let tick () =
    incr walk_steps;
    if !walk_steps > ctx.cfg.max_walk_steps then raise Too_many_paths
  in
  (* walk blocks of [f]; [visits] caps loop iterations; [nacc] is the
     incrementally-maintained length of [acc] *)
  let rec walk_func f depth (acc : event list) (nacc : int)
      (k : event list -> int -> unit) : unit =
    match Ir.find_func ctx.prog f with
    | None -> k acc nacc
    | Some fn ->
        let visits = Hashtbl.create 8 in
        walk_block fn f depth fn.entry visits acc nacc k
  and walk_block fn f depth bid visits acc nacc k =
    let count = Option.value (Hashtbl.find_opt visits bid) ~default:0 in
    if count >= ctx.cfg.loop_bound + 1 then () (* prune over-unrolled path *)
    else begin
      Hashtbl.replace visits bid (count + 1);
      let b = Ir.block fn bid in
      walk_insts fn f depth b.insts visits acc nacc (fun acc nacc ->
          walk_term fn f depth b visits acc nacc k);
      Hashtbl.replace visits bid count
    end
  and walk_insts fn f depth insts visits acc nacc k =
    tick ();
    match insts with
    | [] -> k acc nacc
    | i :: rest ->
        let continue_with acc nacc = walk_insts fn f depth rest visits acc nacc k in
        let ev desc =
          {
            e_uid = fresh_uid ();
            e_pp = i.Ir.ipp;
            e_loc = i.Ir.iloc;
            e_func = f;
            e_desc = desc;
          }
        in
        if nacc > ctx.cfg.max_events then () (* prune *)
        else begin
          match i.Ir.idesc with
          | Isend (p, _) -> (
              match relevant_objs ctx f p with
              | [] -> continue_with acc nacc
              | objs ->
                  continue_with
                    (ev (Sync (Sop (Report.Ksend, objs))) :: acc)
                    (nacc + 1))
          | Irecv (_, p, _) -> (
              match relevant_objs ctx f p with
              | [] -> continue_with acc nacc
              | objs ->
                  continue_with
                    (ev (Sync (Sop (Report.Krecv, objs))) :: acc)
                    (nacc + 1))
          | Iclose p -> (
              match relevant_objs ctx f p with
              | [] -> continue_with acc nacc
              | objs ->
                  continue_with
                    (ev (Sync (Sop (Report.Kclose, objs))) :: acc)
                    (nacc + 1))
          | Ilock p -> (
              match relevant_objs ctx f p with
              | [] -> continue_with acc nacc
              | objs ->
                  continue_with
                    (ev (Sync (Sop (Report.Klock, objs))) :: acc)
                    (nacc + 1))
          | Iunlock p -> (
              match relevant_objs ctx f p with
              | [] -> continue_with acc nacc
              | objs ->
                  continue_with
                    (ev (Sync (Sop (Report.Kunlock, objs))) :: acc)
                    (nacc + 1))
          | Iwg_add (p, delta) when ctx.cfg.model_waitgroup -> (
              match relevant_objs ctx f p with
              | [] -> continue_with acc nacc
              | objs ->
                  let w =
                    match delta with Ir.Oconst_int n -> Some n | _ -> None
                  in
                  continue_with
                    (ev (Sync (Swg_add (objs, w))) :: acc)
                    (nacc + 1))
          | Iwg_done p when ctx.cfg.model_waitgroup -> (
              match relevant_objs ctx f p with
              | [] -> continue_with acc nacc
              | objs ->
                  continue_with
                    (ev (Sync (Sop (Report.Kwg_done, objs))) :: acc)
                    (nacc + 1))
          | Iwg_wait p when ctx.cfg.model_waitgroup -> (
              match relevant_objs ctx f p with
              | [] -> continue_with acc nacc
              | objs ->
                  continue_with
                    (ev (Sync (Sop (Report.Kwg_wait, objs))) :: acc)
                    (nacc + 1))
          | Igo (g, args) ->
              continue_with (ev (Spawn (g, args)) :: acc) (nacc + 1)
          | Icall (_, g, _) ->
              if
                depth < ctx.cfg.max_call_depth
                && List.mem g ctx.scope_funcs
                && touches_pset ctx g
              then
                (* inline the callee's paths *)
                walk_func g (depth + 1) acc nacc continue_with
              else continue_with acc nacc
          | Icall_indirect _ -> continue_with acc nacc
          | _ -> continue_with acc nacc
        end
  and walk_term fn f depth (b : Ir.block) visits acc nacc k =
    let ev ~pp ~loc desc =
      { e_uid = fresh_uid (); e_pp = pp; e_loc = loc; e_func = f; e_desc = desc }
    in
    match b.term with
    | Tjump t -> walk_block fn f depth t visits acc nacc k
    | Tbranch (c, bt, bf) -> (
        match cond_const_value c with
        | Some true -> walk_block fn f depth bt visits acc nacc k
        | Some false -> walk_block fn f depth bf visits acc nacc k
        | None ->
            let txt = cond_text (multi_of fn) c in
            let goto polarity target =
              let acc, nacc =
                match txt with
                | Some t ->
                    (ev ~pp:0 ~loc:b.term_loc (Branch (t, polarity)) :: acc,
                     nacc + 1)
                | None -> (acc, nacc)
              in
              walk_block fn f depth target visits acc nacc k
            in
            goto true bt;
            goto false bf)
    | Tselect (arms, dflt, sel_pp) ->
        let arm_infos =
          List.map
            (fun (a : Ir.select_arm) ->
              let kind, p =
                match a.arm_op with
                | Arm_recv (p, _) -> (Report.Krecv, p)
                | Arm_send (p, _) -> (Report.Ksend, p)
              in
              (kind, place_objs ctx f p))
            arms
        in
        List.iteri
          (fun idx (a : Ir.select_arm) ->
            let acc' =
              ev ~pp:sel_pp ~loc:b.term_loc
                (Sync
                   (Sselect
                      { arms = arm_infos; chosen = Some idx; has_default = dflt <> None }))
              :: acc
            in
            walk_block fn f depth a.arm_target visits acc' (nacc + 1) k)
          arms;
        (match dflt with
        | Some d ->
            let acc' =
              ev ~pp:sel_pp ~loc:b.term_loc
                (Sync (Sselect { arms = arm_infos; chosen = None; has_default = true }))
              :: acc
            in
            walk_block fn f depth d visits acc' (nacc + 1) k
        | None -> ())
    | Treturn _ | Tpanic | Texit | Tunreachable -> k acc nacc
  in
  (try walk_func fname 0 [] 0 emit_path with Too_many_paths -> ());
  (* renumber uids per path so they are dense and deterministic *)
  List.rev_map
    (fun p ->
      let evs = List.mapi (fun i e -> { e with e_uid = i }) p.p_events in
      { p with p_events = evs })
    !paths

(* ------------------------------------------------------ combinations *)

type goroutine_instance = {
  gi_id : int;
  gi_func : string;
  gi_parent : int option;       (* index of the spawning goroutine *)
  gi_spawn_uid : int option;    (* uid of the Spawn event in the parent *)
  gi_path : path;
}

type combination = goroutine_instance list

(* Build all combinations rooted at [root]: choose a path for the root,
   then recursively choose paths for every goroutine it spawns. *)
let combinations ctx ~(root : string) ~(max_combos : int) ~(max_goroutines : int) :
    combination list =
  Goobs.Trace.with_span ~name:"pathenum.combinations"
    ~args:[ ("root", root) ]
  @@ fun () ->
  let m = Goobs.Metrics.default in
  Goobs.Metrics.incr (Goobs.Metrics.counter m "pathenum.runs");
  let path_memo : (string, path list) Hashtbl.t = Hashtbl.create 8 in
  let paths_of f =
    match Hashtbl.find_opt path_memo f with
    | Some ps -> ps
    | None ->
        let ps = enumerate ctx f in
        Goobs.Metrics.add
          (Goobs.Metrics.counter m "pathenum.paths")
          (List.length ps);
        Hashtbl.replace path_memo f ps;
        ps
  in
  let results = ref [] in
  let count = ref 0 in
  let exception Done in
  let rec expand (pending : (int option * int option * string) list)
      (built : goroutine_instance list) (next_id : int) : unit =
    if !count >= max_combos then raise Done;
    match pending with
    | [] ->
        incr count;
        results := List.rev built :: !results
    | (parent, spawn_uid, f) :: rest ->
        if next_id >= max_goroutines then begin
          (* too many goroutines: drop the extra spawn rather than the
             whole combination *)
          expand rest built next_id
        end
        else
          let ps = paths_of f in
          let ps = if ps = [] then [ { p_func = f; p_events = [] } ] else ps in
          List.iter
            (fun path ->
              let gi =
                {
                  gi_id = next_id;
                  gi_func = f;
                  gi_parent = parent;
                  gi_spawn_uid = spawn_uid;
                  gi_path = path;
                }
              in
              let spawned =
                List.filter_map
                  (fun e ->
                    match e.e_desc with
                    | Spawn (g, _) when Ir.find_func ctx.prog g <> None ->
                        Some (Some next_id, Some e.e_uid, g)
                    | _ -> None)
                  path.p_events
              in
              expand (rest @ spawned) (gi :: built) (next_id + 1))
            ps
  in
  (try expand [ (None, None, root) ] [] 0 with Done -> ());
  Goobs.Metrics.add
    (Goobs.Metrics.counter m "pathenum.combinations")
    (List.length !results);
  List.rev !results

(* Does a combination contain conflicting interpreted branch conditions?
   (same condition text taken with both polarities anywhere in the
   combination, per function) *)
let has_conflicts (combo : combination) : bool =
  let seen = Hashtbl.create 16 in
  List.exists
    (fun gi ->
      List.exists
        (fun e ->
          match e.e_desc with
          | Branch (txt, pol) -> (
              let key = (e.e_func, txt) in
              match Hashtbl.find_opt seen key with
              | Some p when p <> pol -> true
              | Some _ -> false
              | None ->
                  Hashtbl.add seen key pol;
                  false)
          | _ -> false)
        gi.gi_path.p_events)
    combo

(* Does the combination contain any blocking-capable operation on Pset? *)
let has_blocking_op (combo : combination) : bool =
  List.exists
    (fun gi ->
      List.exists
        (fun e ->
          match e.e_desc with
          | Sync
              (Sop
                 ( (Report.Ksend | Report.Krecv | Report.Klock | Report.Kwg_wait),
                   _ )) ->
              true
          | Sync (Sselect { has_default = false; _ }) -> true
          | _ -> false)
        gi.gi_path.p_events)
    combo

(* ------------------------------------------------------------ dedup --- *)

(* Drop combinations whose *sync-relevant projection* duplicates an
   earlier combination in the list.

   The projection keeps every event except [Branch]: sends/recvs/closes,
   locks, WaitGroup ops, selects and spawns, keyed by (program point,
   descriptor), plus the spawn structure (which parent, which projected
   spawn event each goroutine hangs off).  Branch events exist only to
   let [has_conflicts] reject infeasible combinations — the constraint
   system never looks at them, and a branch event contributes nothing
   but an interpolatable link in its goroutine's program-order chain.
   Two combinations with equal projections therefore yield the same set
   of suspicious groups and the same verdict for each, so — provided the
   caller has ALREADY filtered with [has_conflicts] (dropping a feasible
   combination because an infeasible twin came first would lose bugs) —
   keeping the first of each equivalence class preserves every verdict.

   Events are hash-consed into small integer ids so comparing two
   combinations costs an int-list compare, not a deep structural walk.
   Returns the survivors (original order, original indices) and the
   number of combinations dropped. *)
let dedup_combinations (combos : (int * combination) list) :
    (int * combination) list * int =
  let intern : (Ir.pp * edesc, int) Hashtbl.t = Hashtbl.create 256 in
  let next = ref 0 in
  let id_of pp desc =
    let k = (pp, desc) in
    match Hashtbl.find_opt intern k with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add intern k i;
        i
  in
  let key_of (combo : combination) =
    (* per goroutine: projected event ids, plus where its spawn event
       sits in the parent's projected sequence *)
    let projected =
      List.map
        (fun gi ->
          List.filter
            (fun e -> match e.e_desc with Branch _ -> false | _ -> true)
            gi.gi_path.p_events)
        combo
    in
    let proj_arr = Array.of_list projected in
    List.map2
      (fun gi evs ->
        let spawn_idx =
          match (gi.gi_parent, gi.gi_spawn_uid) with
          | Some p, Some u when p < Array.length proj_arr ->
              let rec find i = function
                | [] -> -1
                | e :: _ when e.e_uid = u -> i
                | _ :: rest -> find (i + 1) rest
              in
              Some (find 0 proj_arr.(p))
          | _ -> None
        in
        ( gi.gi_func,
          gi.gi_parent,
          spawn_idx,
          List.map (fun e -> id_of e.e_pp e.e_desc) evs ))
      combo projected
  in
  let seen = Hashtbl.create 64 in
  let dropped = ref 0 in
  let kept =
    List.filter
      (fun (_, combo) ->
        let k = key_of combo in
        if Hashtbl.mem seen k then begin
          incr dropped;
          false
        end
        else begin
          Hashtbl.add seen k ();
          true
        end)
      combos
  in
  (kept, !dropped)
