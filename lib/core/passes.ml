module E = Goengine.Engine
module D = Goengine.Diagnostics
module M = Goobs.Metrics

(* GCatch's detectors packaged as named engine passes.

   The registry replaces the hard-coded detector calls that used to live
   in [Driver] and in every entry point: BMOC, each of the five
   traditional checkers, and the §6 non-blocking checkers are
   independent passes with their own enable flag, timing, and metrics.
   Each diagnostic carries the original typed report as a payload so
   GFix and the scorer lose nothing by going through the engine. *)

type D.payload +=
  | Bmoc_bug of Report.bmoc_bug
  | Trad_bug of Report.trad_bug
  | Nb_bug of Nonblocking.nb_bug

(* ------------------------------------------------ payload recovery --- *)

let bmoc_bugs (diags : D.t list) : Report.bmoc_bug list =
  List.filter_map
    (fun (d : D.t) ->
      match d.D.payload with Bmoc_bug b -> Some b | _ -> None)
    diags

let trad_bugs (diags : D.t list) : Report.trad_bug list =
  List.filter_map
    (fun (d : D.t) ->
      match d.D.payload with Trad_bug t -> Some t | _ -> None)
    diags

let nb_bugs (diags : D.t list) : Nonblocking.nb_bug list =
  List.filter_map
    (fun (d : D.t) ->
      match d.D.payload with Nb_bug b -> Some b | _ -> None)
    diags

(* ------------------------------------------------------ diagnostics --- *)

let bmoc_diag (b : Report.bmoc_bug) : D.t =
  let loc =
    match b.Report.chan_loc with
    | Some l -> Some l
    | None -> (
        match b.Report.blocked with
        | o :: _ -> Some o.Report.bo_loc
        | [] -> None)
  in
  D.v ~pass:"bmoc" ?loc ~payload:(Bmoc_bug b) (Report.bmoc_str b)

let trad_diag ~pass (t : Report.trad_bug) : D.t =
  D.v ~pass ~severity:D.Error ~loc:t.Report.tloc ~payload:(Trad_bug t)
    (Report.trad_str t)

let nb_diag (b : Nonblocking.nb_bug) : D.t =
  D.v ~pass:"nonblocking" ~loc:b.Nonblocking.nb_second ~payload:(Nb_bug b)
    (Nonblocking.nb_str b)

(* ------------------------------------------------- shared pre-pass --- *)

(* The traditional checkers all consume the primitive/operation map.
   Alias facts and the call graph come from the engine's cached stages;
   [Primitives.collect] itself is memoized per artifact key so the five
   checker passes pay for it once. *)
let prims_cache : (string, Primitives.t) Hashtbl.t = Hashtbl.create 16
let prims_mu = Mutex.create ()

let prims_for (a : E.artifacts) : Primitives.t =
  (* forced before taking the lock: forcing under [prims_mu] could hold
     it across the whole frontend *)
  let ir = Lazy.force a.E.a_ir in
  let alias = Lazy.force a.E.a_alias in
  Mutex.lock prims_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock prims_mu)
    (fun () ->
      match Hashtbl.find_opt prims_cache a.E.a_key with
      | Some p -> p
      | None ->
          if Hashtbl.length prims_cache >= 256 then Hashtbl.reset prims_cache;
          let p = Primitives.collect ir alias in
          Hashtbl.add prims_cache a.E.a_key p;
          p)

(* ----------------------------------------------------------- passes --- *)

(* A channel skipped on solver-budget exhaustion becomes a warning, not
   an error: the run completed, one scope's verdict is just unknown. *)
let skip_diag (sk : Bmoc.skipped) : D.t =
  D.v ~pass:"bmoc" ~severity:D.Warning ?loc:sk.Bmoc.sk_loc
    (Printf.sprintf
       "channel %s skipped: solver budget exhausted after %.0f ms (budget %s \
        ms, %d path event(s) enumerated)"
       (Goanalysis.Alias.obj_str sk.Bmoc.sk_obj)
       sk.Bmoc.sk_elapsed_ms
       (match sk.Bmoc.sk_budget_ms with
       | Some b -> string_of_int b
       | None -> "none")
       sk.Bmoc.sk_ops)

(* A per-channel supervision note from the detector's fault boundaries,
   rendered as a Warning carrying the typed {!Goengine.Supervise.Fault}
   payload. *)
let note_diag (n : Bmoc.chan_note) : D.t =
  let module S = Goengine.Supervise in
  let unit_name =
    Printf.sprintf "bmoc channel %s" (Goanalysis.Alias.obj_str n.Bmoc.cn_obj)
  in
  match n.Bmoc.cn_note with
  | `Faulted detail ->
      S.diag ~pass:"bmoc" ?loc:n.Bmoc.cn_loc ~unit_name S.Degraded
        (detail ^ "; verdict dropped, other channels unaffected")
  | `Recovered rung ->
      S.diag ~pass:"bmoc" ?loc:n.Bmoc.cn_loc ~unit_name S.Retried
        (Printf.sprintf
           "solver budget exhausted at full bounds; recovered at ladder rung \
            %d (reduced path/combination bounds)"
           rung)
  | `Pressure reason ->
      S.diag ~pass:"bmoc" ?loc:n.Bmoc.cn_loc ~unit_name S.Skipped
        (reason ^ "; partial results flushed")

(* ------------------------------------------------ pass result cache --- *)

(* Detector passes are pure functions of the compiled program and their
   configuration, so each pass's *typed* result is cached on disk keyed
   by [E.a_content] — the digest of every file's compiled form — plus
   the pass name and a config fingerprint.  A warm re-analysis whose
   edits leave every file's compiled form unchanged (a comment, a cache
   restart) skips the detector bodies entirely; an edit that changes
   compiled code changes the key and the pass recomputes.  Typed
   results, not diagnostics, are marshalled: extensible-variant
   payloads do not survive Marshal, so hits are re-rendered through the
   same diagnostic builders as a cold run.  The cache stands down while
   fault injection is armed (injected faults must reach the pass body),
   and [cacheable] lets a pass refuse to persist degraded results. *)
let pass_cached ~cache_dir ~pass ~fpr ~metrics (a : E.artifacts) ~cacheable
    compute =
  let stage = "pass." ^ pass in
  match cache_dir with
  | Some dir when not (Goengine.Faults.active ()) -> (
      match Lazy.force a.E.a_content with
      | None -> compute ()
      | Some content ->
          let key =
            Digest.to_hex
              (Digest.string (String.concat "\x00" [ content; pass; fpr ]))
          in
          (match (try E.disk_read dir ~stage ~key with _ -> None) with
          | Some (r, _) ->
              M.incr (M.counter metrics "engine.pass_cache_hit");
              r
          | None ->
              let r = compute () in
              if cacheable r then (
                (try ignore (E.disk_write dir ~stage ~key r) with _ -> ());
                M.incr (M.counter metrics "engine.pass_cache_store"));
              r))
  | _ -> compute ()

let bmoc_pass ?(cfg = Bmoc.default_config) () : E.pass =
  let fpr = lazy (Solve_cache.fingerprint cfg) in
  {
    E.p_name = "bmoc";
    p_doc = "blocking misuse-of-channel detector (paper Algorithm 1)";
    p_default = true;
    p_run =
      (fun pool metrics a ->
        let bugs, skipped, notes =
          (* skips (budget exhaustion) and supervision notes depend on
             machine speed and fault state — never replay them from
             cache *)
          pass_cached ~cache_dir:cfg.Bmoc.cache_dir ~pass:"bmoc"
            ~fpr:(Lazy.force fpr) ~metrics a
            ~cacheable:(fun (_, sk, nt) -> sk = [] && nt = [])
            (fun () ->
              let r =
                Bmoc.detect_full ~cfg ~pool ~metrics (Lazy.force a.E.a_ir)
              in
              (r.Bmoc.f_bugs, r.Bmoc.f_skipped, r.Bmoc.f_notes))
        in
        List.map bmoc_diag bugs
        @ List.map skip_diag skipped
        @ List.map note_diag notes);
  }

let trad_pass name doc run : E.pass =
  {
    E.p_name = name;
    p_doc = doc;
    p_default = true;
    p_run =
      (fun pool metrics a ->
        let bugs =
          Goobs.Trace.with_span ~name (fun () -> run pool metrics a)
        in
        M.add (M.counter metrics (name ^ ".reports")) (List.length bugs);
        List.map (trad_diag ~pass:name) bugs);
  }

let traditional_passes ?cfg () : E.pass list =
  let cache_dir = Option.bind cfg (fun c -> c.Bmoc.cache_dir) in
  let ir a = Lazy.force a.E.a_ir in
  let alias a = Lazy.force a.E.a_alias in
  let cg a = Lazy.force a.E.a_callgraph in
  (* the traditional checkers take no configuration, so the cache key
     needs no fingerprint beyond the pass name *)
  let trad name doc run =
    trad_pass name doc (fun pool metrics a ->
        pass_cached ~cache_dir ~pass:name ~fpr:"" ~metrics a
          ~cacheable:(fun _ -> true)
          (fun () -> run pool metrics a))
  in
  [
    trad "trad.missing-unlock" "lock acquired but not released on some path"
      (fun pool metrics a ->
        Traditional.check_missing_unlock ~pool ~metrics (prims_for a) (alias a)
          (ir a));
    trad "trad.double-lock" "same mutex acquired twice without release"
      (fun pool metrics a ->
        Traditional.check_double_lock ~pool ~metrics (prims_for a) (alias a)
          (cg a) (ir a));
    trad "trad.lock-order" "conflicting lock acquisition order"
      (fun pool metrics a ->
        Traditional.check_conflicting_order ~pool ~metrics (prims_for a)
          (alias a) (ir a));
    trad "trad.field-race" "struct field accessed without the usual lock"
      (fun pool metrics a ->
        Traditional.check_field_race ~pool ~metrics (prims_for a) (alias a)
          (ir a));
    trad "trad.fatal-child" "testing.Fatal called from a child goroutine"
      (fun pool metrics a ->
        Traditional.check_fatal_in_child ~pool ~metrics (ir a));
  ]

let nonblocking_pass ?(cfg = Bmoc.default_config) () : E.pass =
  let fpr = lazy (Solve_cache.fingerprint cfg) in
  {
    E.p_name = "nonblocking";
    p_doc = "non-blocking misuse checkers (send-on-closed, double close)";
    p_default = false;
    p_run =
      (fun _pool metrics a ->
        let bugs =
          pass_cached ~cache_dir:cfg.Bmoc.cache_dir ~pass:"nonblocking"
            ~fpr:(Lazy.force fpr) ~metrics a
            ~cacheable:(fun _ -> true)
            (fun () -> Nonblocking.detect ~cfg (Lazy.force a.E.a_ir))
        in
        M.add (M.counter metrics "nonblocking.reports") (List.length bugs);
        List.map nb_diag bugs);
  }

(* The full registry, in display order. *)
let all ?cfg () : E.pass list =
  (bmoc_pass ?cfg () :: traditional_passes ?cfg ())
  @ [ nonblocking_pass ?cfg () ]

(* An engine pre-loaded with every GCatch pass.  [jobs] sizes the domain
   pool the passes fan out on (1 = sequential, the default); [registry]
   unifies the engine's metrics with a caller-wide registry (the CLI
   passes [Goobs.Metrics.default]). *)
let engine ?cfg ?(jobs = 1) ?registry ?max_entries () : E.t =
  (* the detector config's cache directory doubles as the engine's
     per-file frontend cache tier: one --cache-dir warms both *)
  let cache_dir = Option.bind cfg (fun c -> c.Bmoc.cache_dir) in
  E.create ~passes:(all ?cfg ()) ~jobs ?registry ?cache_dir ?max_entries ()
