module Ir = Goir.Ir
module Alias = Goanalysis.Alias
module E = Goengine.Engine

(* Compatibility shim over the staged analysis engine.

   Historically this module *was* the pipeline: every entry point
   re-wired parse -> typecheck -> lower -> detect by hand.  The pipeline
   now lives in [Goengine.Engine] (artifact cache, pass registry,
   unified diagnostics); what remains here is the classic [analysis]
   record and the [analyse*] helpers the test suites and older callers
   use.  Compilation goes through a process-wide engine, so repeated
   analyses of the same source set parse/typecheck/lower exactly once. *)

type analysis = {
  source : Minigo.Ast.program;
  ir : Ir.program;
  bmoc : Report.bmoc_bug list;
  trad : Report.trad_bug list;
  stats : Bmoc.stats;
  elapsed_s : float;
}

(* The engine behind the legacy API.  Entry points that want their own
   cache lifetime (the CLIs, bench) create their own [Engine.t] and use
   [analyse_with]. *)
let default_engine : E.t Lazy.t = lazy (E.create ())

let compile_sources ~name (sources : string list) :
    Minigo.Ast.program * Ir.program =
  let a = E.artifacts (Lazy.force default_engine) ~name sources in
  (Lazy.force a.E.a_typed, Lazy.force a.E.a_ir)

let analyse_ir ?(cfg = Bmoc.default_config) ?pool
    (source : Minigo.Ast.program) (ir : Ir.program) : analysis =
  let t0 = Goengine.Clock.now_s () in
  let bmoc, stats = Bmoc.detect ~cfg ?pool ir in
  let trad = Traditional.detect ?pool ir in
  let elapsed_s = Goengine.Clock.elapsed_since t0 in
  { source; ir; bmoc; trad; stats; elapsed_s }

(* Analyse through a caller-supplied engine: compile via its artifact
   cache, then run the detectors.  Frontend errors propagate as the
   classic exceptions; callers wanting structured diagnostics use
   [Engine.analyse] with the [Passes] registry instead. *)
let analyse_with (engine : E.t) ?cfg ~name (sources : string list) : analysis =
  let a = E.artifacts engine ~name sources in
  analyse_ir ?cfg ~pool:(E.pool engine) (Lazy.force a.E.a_typed)
    (Lazy.force a.E.a_ir)

let analyse ?cfg ?jobs ~name (sources : string list) : analysis =
  match jobs with
  | None | Some 1 -> analyse_with (Lazy.force default_engine) ?cfg ~name sources
  | Some n ->
      let a = E.artifacts (Lazy.force default_engine) ~name sources in
      analyse_ir ?cfg
        ~pool:(Goengine.Pool.get ~jobs:n)
        (Lazy.force a.E.a_typed) (Lazy.force a.E.a_ir)

let analyse_string ?cfg (src : string) : analysis =
  analyse ?cfg ~name:"input" [ src ]

let print_reports (a : analysis) =
  List.iter (fun b -> print_endline (Report.bmoc_str b)) a.bmoc;
  List.iter (fun t -> print_endline (Report.trad_str t)) a.trad
