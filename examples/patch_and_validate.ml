(* All three GFix strategies on the paper's three figure bugs, each
   validated by running original vs patched under many schedules.

   Figure 1 (Docker)      -> Strategy-I   (buffer 0 -> 1)
   Figure 3 (etcd)        -> Strategy-II  (defer the missed send)
   Figure 4 (go-ethereum) -> Strategy-III (stop channel + select)

   Run with:  dune exec examples/patch_and_validate.exe *)

(* Figure 3 shape: a test that can exit through t.Fatalf without sending
   on stop, leaving the dialer goroutine blocked.  We give it a main()
   wrapper so the runtime can drive it. *)
let fig3 =
  {gosrc|
func dialerStart(stop chan bool) {
	conns := 0
	conns++
	<-stop
}

func TestRWDialer(t *testing.T) {
	stop := make(chan bool)
	go dialerStart(stop)
	err := errorf("dial failed")
	if err != nil {
		t.Fatalf("dial error")
	}
	stop <- true
}

func main() {
	var t *testing.T
	TestRWDialer(t)
}
|gosrc}

(* Figure 4 shape: the child feeds lines to a scheduler loop; the parent
   can leave through the abort channel, stranding the producer. *)
let fig4 =
  {gosrc|
func Interactive(abort chan bool, inputs int) int {
	scheduler := make(chan string)
	go func(n int) {
		for i := range n {
			line := "line"
			scheduler <- line
		}
	}(inputs)
	handled := 0
	for {
		select {
		case <-abort:
			return handled
		case line := <-scheduler:
			if len(line) == 0 {
				return handled
			}
			handled++
		}
	}
}

func main() {
	abort := make(chan bool, 1)
	abort <- true
	n := Interactive(abort, 3)
	println("handled", n)
}
|gosrc}

module E = Goengine.Engine

(* every figure flows through one shared engine *)
let engine = Gcatch.Passes.engine ()

let demo name src =
  Printf.printf "== %s ==\n" name;
  let r = E.analyse ~only:[ "bmoc" ] engine ~name:"input" [ src ] in
  let source = Lazy.force (Option.get r.E.r_artifacts).E.a_typed in
  let bmoc = Gcatch.Passes.bmoc_bugs r.E.r_diags in
  Printf.printf "  GCatch found %d BMOC bug(s)\n" (List.length bmoc);
  let patched =
    List.fold_left
      (fun prog (_, o) ->
        match o with
        | Gcatch.Gfix.Fixed f ->
            Printf.printf "  GFix: %s via %s (%d changed lines)\n" f.description
              (Gcatch.Gfix.strategy_str f.strategy)
              f.changed_lines;
            f.patched
        | Gcatch.Gfix.Not_fixed r ->
            Printf.printf "  GFix skipped one report: %s\n" r;
            prog)
      source
      (Gcatch.Gfix.fix_all source bmoc)
  in
  let seeds = 40 in
  let _, before, _, _ = Goruntime.Interp.run_schedules ~seeds source in
  let _, after, _, _ = Goruntime.Interp.run_schedules ~seeds patched in
  Printf.printf "  leaks: %d/%d schedules before, %d/%d after\n\n" before seeds
    after seeds;
  patched

let () =
  let p3 = demo "Figure 3: missing interaction (etcd)" fig3 in
  (match Minigo.Ast.find_func p3 "TestRWDialer" with
  | Some fd -> print_string (Minigo.Pretty.func_str fd)
  | None -> ());
  print_newline ();
  let p4 = demo "Figure 4: multiple operations (go-ethereum)" fig4 in
  match Minigo.Ast.find_func p4 "Interactive" with
  | Some fd -> print_string (Minigo.Pretty.func_str fd)
  | None -> ()
