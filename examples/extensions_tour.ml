(* A tour of the implemented §6 extensions — the features the paper lists
   as future work:

   1. non-blocking misuse-of-channel checkers (send-on-closed, double
      close), validated against the runtime's panics;
   2. WaitGroup modeling in the constraint system (off by default to
      mirror the paper's coverage study; enabled here);
   3. sync.Cond via the paper's channel encoding, including the classic
      lost-signal race.

   Run with:  dune exec examples/extensions_tour.exe *)

let send_on_closed =
  {gosrc|
func Publish() {
	events := make(chan int, 4)
	go func() {
		close(events)
	}()
	events <- 1
}

func main() {
	Publish()
}
|gosrc}

let waitgroup_bug =
  {gosrc|
func Gather(skip bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func(s bool) {
		if s {
			return
		}
		wg.Done()
	}(skip)
	wg.Wait()
}

func main() {
	Gather(true)
}
|gosrc}

let lost_signal =
  {gosrc|
func main() {
	var ready sync.Cond
	go func() {
		ready.Wait()
		println("worker running")
	}()
	ready.Signal()
}
|gosrc}

let parse src =
  Minigo.Typecheck.check_program (Minigo.Parser.parse_string src)

let leak_rate prog =
  let seeds = 40 in
  let _, leaks, _, _ = Goruntime.Interp.run_schedules ~seeds prog in
  (leaks, seeds)

let panic_rate prog =
  let n = ref 0 in
  for seed = 1 to 40 do
    if (Goruntime.Interp.run ~seed prog).panics <> [] then incr n
  done;
  (!n, 40)

module E = Goengine.Engine
module D = Goengine.Diagnostics

let () =
  (* One engine, one registry.  The WaitGroup-modeling variant of BMOC
     is registered as an extra named pass over the *same* cached
     artifacts, so the with/without comparison compiles the program
     exactly once. *)
  let engine = Gcatch.Passes.engine () in
  let wg_cfg =
    {
      Gcatch.Bmoc.default_config with
      path_cfg = { Gcatch.Pathenum.default_config with model_waitgroup = true };
    }
  in
  E.register engine
    {
      (Gcatch.Passes.bmoc_pass ~cfg:wg_cfg ()) with
      E.p_name = "bmoc+waitgroup";
      p_doc = "BMOC with WaitGroup Add/Done/Wait modeled (§6)";
      p_default = false;
    };

  print_endline "== 1. send on a closed channel (non-blocking misuse) ==";
  let r = E.analyse ~only:[ "nonblocking" ] engine ~name:"ext" [ send_on_closed ] in
  List.iter
    (fun d -> print_endline ("  static:  " ^ D.render_human d))
    r.E.r_diags;
  let ast = Lazy.force (Option.get r.E.r_artifacts).E.a_typed in
  let p, n = panic_rate ast in
  Printf.printf "  dynamic: panics on %d/%d schedules\n\n" p n;

  print_endline "== 2. WaitGroup bug (Done skipped on one path) ==";
  let base = E.analyse ~only:[ "bmoc" ] engine ~name:"wg" [ waitgroup_bug ] in
  Printf.printf "  without the extension: %d report(s) — the paper's miss class\n"
    (List.length (Gcatch.Passes.bmoc_bugs base.E.r_diags));
  let ext = E.analyse ~only:[ "bmoc+waitgroup" ] engine ~name:"wg" [ waitgroup_bug ] in
  List.iter
    (fun d -> print_endline ("  with --model-waitgroup: " ^ D.render_human d))
    ext.E.r_diags;
  let l, n = leak_rate (parse waitgroup_bug) in
  Printf.printf "  dynamic: leaks on %d/%d schedules\n\n" l n;

  print_endline "== 3. sync.Cond lost-signal race ==";
  let a = E.analyse ~only:[ "bmoc" ] engine ~name:"cond" [ lost_signal ] in
  List.iter
    (fun d -> print_endline ("  static:  " ^ D.render_human d))
    a.E.r_diags;
  let l, n = leak_rate (parse lost_signal) in
  Printf.printf
    "  dynamic: the waiter leaks on %d/%d schedules (and runs on the rest —\n\
    \  the race the detector predicted)\n"
    l n
