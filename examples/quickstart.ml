(* Quickstart: the paper's Figure 1 end to end.

   1. Parse and type-check a MiniGo program containing the Docker Exec
      bug.
   2. Run GCatch: it reports that the child goroutine's send can block
      forever when the parent takes the ctx.Done() case.
   3. Run GFix: Strategy-I turns `make(chan error)` into
      `make(chan error, 1)` — the exact one-line patch Docker applied.
   4. Validate dynamically: the original leaks a goroutine on a fraction
      of schedules; the patched version never does.

   Run with:  dune exec examples/quickstart.exe *)

let figure1 =
  {gosrc|
func StdCopy(r string) (int, error) {
	return len(r), nil
}

func Exec(ctx context.Context, reader string) (string, error) {
	outDone := make(chan error)
	go func(a string) {
		_, err := StdCopy(a)
		outDone <- err
	}(reader)
	select {
	case err := <-outDone:
		if err != nil {
			return "", err
		}
	case <-ctx.Done():
		return "", ctx.Err()
	}
	return "ok", nil
}

func main() {
	ctx := background()
	go func(c context.Context) {
		cancel(c)
	}(ctx)
	r, err := Exec(ctx, "hello")
	println(r, err)
}
|gosrc}

module E = Goengine.Engine
module D = Goengine.Diagnostics

let () =
  print_endline "== GCatch: detecting ==";
  (* one engine compiles the program; the BMOC pass reports through the
     unified diagnostics, and GFix reuses the same cached typed AST *)
  let engine = Gcatch.Passes.engine () in
  let r = E.analyse ~only:[ "bmoc" ] engine ~name:"input" [ figure1 ] in
  List.iter (fun d -> print_endline ("  " ^ D.render_human d)) r.E.r_diags;
  let source = Lazy.force (Option.get r.E.r_artifacts).E.a_typed in
  let bmoc = Gcatch.Passes.bmoc_bugs r.E.r_diags in

  print_endline "\n== GFix: patching ==";
  let fixes = Gcatch.Gfix.fix_all source bmoc in
  let patched =
    List.fold_left
      (fun prog (_, outcome) ->
        match outcome with
        | Gcatch.Gfix.Fixed f ->
            Printf.printf "  %s\n  %s, %d changed line(s)\n" f.description
              (Gcatch.Gfix.strategy_str f.strategy)
              f.changed_lines;
            f.patched
        | Gcatch.Gfix.Not_fixed reason ->
            Printf.printf "  not fixed: %s\n" reason;
            prog)
      source fixes
  in

  print_endline "\n== Dynamic validation over 50 schedules ==";
  let seeds = 50 in
  let _, leaks_before, _, _ = Goruntime.Interp.run_schedules ~seeds source in
  let _, leaks_after, _, _ = Goruntime.Interp.run_schedules ~seeds patched in
  Printf.printf "  goroutine leaks before the patch: %d/%d schedules\n"
    leaks_before seeds;
  Printf.printf "  goroutine leaks after the patch:  %d/%d schedules\n"
    leaks_after seeds;

  print_endline "\n== Patched function ==";
  match Minigo.Ast.find_func patched "Exec" with
  | Some fd -> print_string (Minigo.Pretty.func_str fd)
  | None -> ()
