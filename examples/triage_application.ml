(* Triage a whole synthetic application the way the paper's authors
   triaged Docker / Kubernetes reports: run the full GCatch pipeline on
   one of the 21 corpus applications, group reports by detector, and
   compare against the seeded ground truth.

   Run with:  dune exec examples/triage_application.exe [app-name]
   (default app: etcd) *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "etcd" in
  match Gocorpus.Apps.find name with
  | None ->
      Goobs.Log.error
        ~kv:
          [
            ( "available",
              String.concat ", "
                (List.map
                   (fun (s : Gocorpus.Apps.spec) -> s.name)
                   Gocorpus.Apps.specs) );
          ]
        (Printf.sprintf "unknown application %s" name);
      exit 2
  | Some app ->
      Printf.printf "== %s: %d lines of MiniGo, %d seeded labels ==\n\n"
        app.spec.name app.loc
        (List.length app.truth);
      let score =
        Goreport.Score.score_app ~engine:(Goengine.Engine.create ()) app
      in
      Printf.printf "analysis time: %.2fs\n\n" score.elapsed_s;

      print_endline "-- BMOC detector --";
      List.iter
        (fun (b : Gcatch.Report.bmoc_bug) ->
          let cls =
            match Goreport.Score.classify_bmoc app.truth b with
            | Goreport.Score.TP _ -> "TRUE BUG "
            | Goreport.Score.FP_expected -> "FP (bait)"
            | Goreport.Score.FP_unexpected -> "FP (!!)  "
          in
          Printf.printf "  [%s] %s\n" cls (Gcatch.Report.bmoc_str b))
        score.analysis.bmoc;

      print_endline "\n-- traditional checkers --";
      List.iter
        (fun (t : Gcatch.Report.trad_bug) ->
          let cls =
            match Goreport.Score.classify_trad app.truth t with
            | Goreport.Score.TP _ -> "TRUE BUG"
            | _ -> "FP      "
          in
          Printf.printf "  [%s] %s\n" cls (Gcatch.Report.trad_str t))
        score.analysis.trad;

      print_endline "\n-- GFix --";
      List.iter
        (fun ((b : Gcatch.Report.bmoc_bug), outcome) ->
          match outcome with
          | Gcatch.Gfix.Fixed f ->
              Printf.printf "  fixed   %-22s %s (%d lines)\n"
                (Goanalysis.Alias.obj_str b.channel)
                (Gcatch.Gfix.strategy_str f.strategy)
                f.changed_lines
          | Gcatch.Gfix.Not_fixed r ->
              Printf.printf "  skipped %-22s %s\n"
                (Goanalysis.Alias.obj_str b.channel)
                r)
        score.fix_details;

      Printf.printf
        "\nsummary: BMOC %d true / %d false-positive; seeded %d, recalled %d; \
         patches S1=%d S2=%d S3=%d, unfixed %d\n"
        (score.bmoc_c_tp + score.bmoc_m_tp)
        (score.bmoc_c_fp + score.bmoc_m_fp)
        score.seeded_bmoc score.found_bmoc score.fixed_s1 score.fixed_s2
        score.fixed_s3 score.unfixed
