(* Benchmark harness: regenerates every evaluation artifact of the paper.

     dune exec bench/main.exe            # all experiments E1..E8 + micro
     dune exec bench/main.exe e1 e5      # a subset
     dune exec bench/main.exe micro      # Bechamel micro-benchmarks only
     dune exec bench/main.exe -- --jobs 4             # parallel detectors
     dune exec bench/main.exe -- --json BENCH.json    # machine-readable out

   Each experiment prints the measured reproduction next to the number
   the paper reports; EXPERIMENTS.md records a snapshot of this output.

   E1  Table 1 (per-app detection and fixing counts)
   E2  scalability: detection wall-time vs application size  (§5.2)
   E3  false-positive breakdown                               (§5.2)
   E4  coverage on the public bug set: 33/49                  (§5.2)
   E5  disentangling ablation: large slowdown when disabled   (§5.2)
   E6  patch runtime overhead: avg 0.26%                      (§5.3)
   E7  patch readability: avg 2.67 changed lines              (§5.3)
   E8  GFix time: ~98% spent in preprocessing                 (§5.3) *)

module Score = Goreport.Score
module R = Gcatch.Report
module G = Gcatch.Gfix
module E = Goengine.Engine
module Clock = Goengine.Clock
module Pool = Goengine.Pool
module D = Goengine.Diagnostics

(* --jobs N: size of the domain pool the detectors fan out on. *)
let jobs_flag = ref 1

(* One staged engine drives every experiment: E1's per-app compiles are
   reused by E5/E6/E8 and by E4's second (WaitGroup-extension) sweep, so
   each distinct source set is parsed/typechecked/lowered exactly once
   per bench run. *)
let engine = lazy (E.create ~jobs:!jobs_flag ())

let analyse ?cfg ~name sources =
  Gcatch.Driver.analyse_with (Lazy.force engine) ?cfg ~name sources

let line () = print_endline (String.make 78 '-')

let header title =
  line ();
  print_endline title;
  line ()

(* The per-app sweep fans out across the pool.  Apps are compiled first
   (sequentially, filling the shared artifact cache) so the parallel part
   is pure detection; [Pool.map] keeps results in input order and a
   nested per-channel fan-out inside a worker forks real scheduled tasks
   with the same input-order assembly, so the scores are identical at
   every jobs setting. *)
let scores : Score.app_score list Lazy.t =
  lazy
    (let e = Lazy.force engine in
     let apps = Gocorpus.Apps.all () in
     List.iter
       (fun (app : Gocorpus.Apps.app) ->
         ignore (E.artifacts e ~name:app.spec.name app.sources))
       apps;
     Pool.map ~pool:(E.pool e) (fun app -> Score.score_app ~engine:e app) apps)

(* ------------------------------------------------------------- E1 --- *)

let e1 () =
  header
    "E1 | Table 1: bugs detected by GCatch and fixed by GFix per application\n\
    \   | cells are true-positives/false-positives, the paper's x_y notation";
  Printf.printf
    "%-13s %7s | %-7s %-6s %-6s %-6s %-6s %-6s %-6s | %3s %3s %3s %7s\n" "app"
    "LoC" "BMOC_C" "BMOC_M" "unlck" "dlck" "cnflt" "field" "fatal" "S1" "S2"
    "S3" "unfixed";
  let tot = Array.make 16 0 in
  List.iter
    (fun (s : Score.app_score) ->
      let cell (tp, fp) = Printf.sprintf "%d/%d" tp fp in
      let t kind =
        match List.assoc_opt kind s.trad with Some c -> c | None -> (0, 0)
      in
      let ul = t R.Forget_unlock
      and dl = t R.Double_lock
      and cf = t R.Conflict_lock
      and fr = t R.Struct_field_race
      and ft = t R.Fatal_in_child in
      Printf.printf
        "%-13s %7d | %-7s %-6s %-6s %-6s %-6s %-6s %-6s | %3d %3d %3d %7d\n"
        s.name s.loc
        (cell (s.bmoc_c_tp, s.bmoc_c_fp))
        (cell (s.bmoc_m_tp, s.bmoc_m_fp))
        (cell ul) (cell dl) (cell cf) (cell fr) (cell ft) s.fixed_s1 s.fixed_s2
        s.fixed_s3 s.unfixed;
      let add i v = tot.(i) <- tot.(i) + v in
      add 0 s.bmoc_c_tp;
      add 1 s.bmoc_c_fp;
      add 2 s.bmoc_m_tp;
      add 3 s.bmoc_m_fp;
      add 4 (fst ul);
      add 5 (snd ul);
      add 6 (fst dl);
      add 7 (snd dl);
      add 8 (fst cf);
      add 9 (snd cf);
      add 10 (fst fr);
      add 11 (snd fr);
      add 12 (fst ft);
      add 13 (snd ft);
      add 14 (s.fixed_s1 + s.fixed_s2 + s.fixed_s3);
      add 15 s.unfixed)
    (Lazy.force scores);
  line ();
  Printf.printf
    "TOTAL         BMOC_C %d/%d  BMOC_M %d/%d  unlock %d/%d  dlock %d/%d  \
     conflict %d/%d  field %d/%d  fatal %d/%d\n"
    tot.(0) tot.(1) tot.(2) tot.(3) tot.(4) tot.(5) tot.(6) tot.(7) tot.(8)
    tot.(9) tot.(10) tot.(11) tot.(12) tot.(13);
  Printf.printf "GFix          fixed %d  unfixed %d\n" tot.(14) tot.(15);
  Printf.printf
    "paper         BMOC_C 147/46 BMOC_M 2/5 unlock 32/15 dlock 19/16 \
     conflict 9/5 field 33/31 fatal 26/0; GFix fixed 124 (S1 99, S2 4, S3 21)\n";
  Printf.printf
    "note          the corpus seeds roughly a third of the paper's volume;\n\
    \              the target is the table's *shape*: which checkers fire\n\
    \              per app, S1 >> S3 > S2, and a similar TP:FP ratio\n"

(* ------------------------------------------------------------- E2 --- *)

let e2 () =
  header
    "E2 | Scalability: detection wall-time vs application size (paper: 3 MLoC\n\
    \   | Kubernetes takes 25.6 h; small apps finish in under a minute)";
  Printf.printf "%-14s %9s %12s %14s %12s\n" "app" "LoC" "time (s)"
    "solver calls" "path events";
  let rows =
    List.sort
      (fun (a : Score.app_score) b -> compare a.loc b.loc)
      (Lazy.force scores)
  in
  List.iter
    (fun (s : Score.app_score) ->
      Printf.printf "%-14s %9d %12.3f %14d %12d\n" s.name s.loc s.elapsed_s
        s.analysis.stats.solver_calls s.analysis.stats.total_path_events)
    rows;
  let slowest =
    List.fold_left
      (fun (acc : Score.app_score) s ->
        if s.Score.elapsed_s > acc.elapsed_s then s else acc)
      (List.hd rows) rows
  in
  let fastest = List.hd rows in
  Printf.printf
    "\nshape: the heaviest app (%s) costs %.0fx the lightest (%s); time\n\
     tracks synchronization-bearing code (solver calls), not raw LoC —\n\
     exactly the scaling disentangling buys: channel-free code is skipped\n"
    slowest.name
    (slowest.elapsed_s /. max 1e-6 fastest.elapsed_s)
    fastest.name

(* ------------------------------------------------------------- E3 --- *)

let e3 () =
  header
    "E3 | False-positive breakdown (paper: 51 BMOC FPs = 20 infeasible paths,\n\
    \   | 17 alias limitations, 14 call-graph limitations)";
  let loop_fp = ref 0 and infeasible_fp = ref 0 and other_fp = ref 0 in
  List.iter
    (fun (s : Score.app_score) ->
      let app = Option.get (Gocorpus.Apps.find s.name) in
      List.iter
        (fun (b : R.bmoc_bug) ->
          match Score.classify_bmoc app.truth b with
          | Score.TP _ -> ()
          | Score.FP_expected | Score.FP_unexpected ->
              let scope_bases =
                List.map Score.base_func
                  (List.map (fun (o : R.blocked_op) -> o.bo_func) b.blocked
                  @ b.scope_funcs)
              in
              let has prefix =
                List.exists
                  (fun f ->
                    String.length f >= String.length prefix
                    && String.sub f 0 (String.length prefix) = prefix)
                  scope_bases
              in
              if has "BatchCopy" then incr loop_fp
              else if has "GuardedNotify" then incr infeasible_fp
              else incr other_fp)
        s.analysis.bmoc)
    (Lazy.force scores);
  Printf.printf "loop-unrolling FPs:   %d   (paper: 11 of 51)\n" !loop_fp;
  Printf.printf "infeasible-path FPs:  %d   (paper: 9 + 20 related)\n"
    !infeasible_fp;
  Printf.printf "other FPs:            %d   (paper: 17 alias + 14 call graph)\n"
    !other_fp;
  let tp =
    List.fold_left
      (fun acc (s : Score.app_score) -> acc + s.bmoc_c_tp + s.bmoc_m_tp)
      0 (Lazy.force scores)
  in
  let fp = !loop_fp + !infeasible_fp + !other_fp in
  Printf.printf "TP:FP ratio:          %d:%d = %.1f   (paper: 149:51 = 2.9)\n" tp
    fp
    (float_of_int tp /. float_of_int (max 1 fp))

(* ------------------------------------------------------------- E4 --- *)

let e4 () =
  header
    "E4 | Coverage on the public Go concurrency bug set (paper: GCatch detects\n\
    \   | 33 of 49 BMOC bugs = 67%)";
  let per_class : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  let detected = ref 0 in
  List.iter
    (fun (e : Gocorpus.Bugset.entry) ->
      let a = analyse ~name:e.bs_name [ "package b\n" ^ e.bs_src ] in
      let found = a.bmoc <> [] in
      if found then incr detected;
      let d, t =
        Option.value (Hashtbl.find_opt per_class e.bs_class) ~default:(0, 0)
      in
      Hashtbl.replace per_class e.bs_class
        ((d + if found then 1 else 0), t + 1))
    Gocorpus.Bugset.entries;
  Hashtbl.fold (fun cls v acc -> (cls, v) :: acc) per_class []
  |> List.sort compare
  |> List.iter (fun (cls, (d, t)) -> Printf.printf "  %-52s %d/%d\n" cls d t);
  Printf.printf "\ncoverage: %d/%d = %.0f%%   (paper: 33/49 = 67%%)\n" !detected
    Gocorpus.Bugset.total
    (100. *. float_of_int !detected /. float_of_int Gocorpus.Bugset.total);
  (* the §6 WaitGroup extension recovers part of the miss classes *)
  let wg_cfg =
    {
      Gcatch.Bmoc.default_config with
      path_cfg = { Gcatch.Pathenum.default_config with model_waitgroup = true };
    }
  in
  let detected_ext = ref 0 in
  List.iter
    (fun (e : Gocorpus.Bugset.entry) ->
      (* same sources, new config: the engine serves the compile from
         its cache and only detection re-runs *)
      let a = analyse ~cfg:wg_cfg ~name:e.bs_name [ "package b\n" ^ e.bs_src ] in
      if a.bmoc <> [] then incr detected_ext)
    Gocorpus.Bugset.entries;
  Printf.printf
    "with the §6 WaitGroup extension enabled: %d/%d = %.0f%% (the paper \
     leaves\nthis as future work)\n"
    !detected_ext Gocorpus.Bugset.total
    (100. *. float_of_int !detected_ext /. float_of_int Gocorpus.Bugset.total)

(* ------------------------------------------------------------- E5 --- *)

let e5 () =
  header
    "E5 | Disentangling ablation (paper: disabling disentangling slows BMOC\n\
    \   | detection by over 115x and lengthens enumerated paths)";
  (* mid-size apps keep the ablated run within minutes; on docker/etcd the
     ablation costs 3+ minutes each at 40-90x *)
  let apps = [ "bbolt"; "grpc"; "go-ethereum" ] in
  Printf.printf "%-14s %12s %12s %10s %12s %12s\n" "app" "on (s)" "off (s)"
    "slowdown" "events on" "events off";
  let total_ratio = ref 0. in
  List.iter
    (fun name ->
      let app = Option.get (Gocorpus.Apps.find name) in
      let a = E.artifacts (Lazy.force engine) ~name app.sources in
      let ir = Lazy.force a.E.a_ir in
      let run cfg =
        let t0 = Clock.now_s () in
        let _, stats = Gcatch.Bmoc.detect ~cfg ir in
        (Clock.elapsed_since t0, stats)
      in
      let t_on, s_on = run Gcatch.Bmoc.default_config in
      let t_off, s_off =
        run { Gcatch.Bmoc.default_config with disentangle = false }
      in
      let ratio = t_off /. max 1e-6 t_on in
      total_ratio := !total_ratio +. ratio;
      Printf.printf "%-14s %12.3f %12.3f %9.1fx %12d %12d\n" name t_on t_off
        ratio s_on.total_path_events s_off.total_path_events)
    apps;
  Printf.printf
    "\nmean slowdown: %.1fx  (paper: >=115x; our ablation keeps the safety\n\
     caps on combinations, which bounds the blowup the paper ran into,\n\
     and the per-channel solve cache collapses the ablated scope's many\n\
     identical canonical problems onto single solves)\n"
    (!total_ratio /. float_of_int (List.length apps))

(* ------------------------------------------------------------- E6 --- *)

(* Drivers whose happy path never triggers the bug, mirroring the paper's
   methodology of timing whole unit tests that exercise the patched code
   but pass (§5.3).  Each driver also runs the surrounding test workload
   (a channel-based work loop), so the patch's constant cost is amortised
   the way it is inside a real unit test. *)
let test_workload =
  "func workload() int {\n\
   \ttotal := 0\n\
   \tfor i := range 40 {\n\
   \t\tc := make(chan int, 1)\n\
   \t\tc <- i\n\
   \t\ttotal = total + <-c\n\
   \t}\n\
   \treturn total\n\
   }\n"

let overhead_cases =
  [
    ( "single-send (S1)",
      (* the result always wins the race because nothing feeds timeout *)
      "package p\n" ^ test_workload ^ "\
       func Fetch(timeout chan bool, url string) string {\n\
       \tresult := make(chan string)\n\
       \tgo func(u string) {\n\t\tresult <- u + \"/index\"\n\t}(url)\n\
       \tselect {\n\
       \tcase body := <-result:\n\t\treturn body\n\
       \tcase <-timeout:\n\t\treturn \"\"\n\
       \t}\n\
       }\n\
       func main() {\n\
       \tprintln(workload())\n\
       \ttimeout := make(chan bool, 1)\n\
       \tprintln(Fetch(timeout, \"u\"))\n\
       }" );
    ( "missing-interaction (S2)",
      (* the Fatal guard can fire statically but never at run time *)
      "package p\n" ^ test_workload ^ "\
       func start(stop chan bool) {\n\t<-stop\n}\n\
       func TestD(t *testing.T, name string) {\n\
       \tstop := make(chan bool)\n\
       \tgo start(stop)\n\
       \tif len(name) > 100 {\n\t\tt.Fatalf(\"name too long\")\n\t}\n\
       \tstop <- true\n\
       }\n\
       func main() {\n\tprintln(workload())\n\tvar t *testing.T\n\tTestD(t, \"short\")\n}" );
    ( "loop-send (S3)",
      (* zero inputs: the producer exits before ever sending *)
      "package p\n" ^ test_workload ^ "\
       func Inter(abort chan bool, n int) int {\n\
       \tsched := make(chan string)\n\
       \tgo func(k int) {\n\t\tfor i := range k {\n\t\t\tsched <- \"l\"\n\t\t}\n\t}(n)\n\
       \tselect {\n\tcase <-abort:\n\t\treturn 0\n\tcase <-sched:\n\t\treturn 1\n\t}\n\
       }\n\
       func main() {\n\
       \tprintln(workload())\n\
       \tabort := make(chan bool, 1)\n\
       \tabort <- true\n\
       \tprintln(Inter(abort, 0))\n\
       }" );
  ]

let e6 () =
  header
    "E6 | Patch runtime overhead in scheduler steps (paper: avg 0.26%, max\n\
    \   | 3.77% wall-clock over the unit tests covering each patch)";
  Printf.printf "%-26s %12s %12s %10s\n" "bug shape" "orig steps" "patched"
    "overhead";
  let overheads =
    List.filter_map
      (fun (name, src) ->
        let a = analyse ~name:"e6" [ src ] in
        let patched =
          List.fold_left
            (fun prog (_, o) ->
              match o with G.Fixed f -> f.patched | G.Not_fixed _ -> prog)
            a.source
            (G.fix_all a.source a.bmoc)
        in
        (* average steps over schedules where the original does not leak,
           so both versions do comparable work *)
        let steps prog =
          let total = ref 0 and n = ref 0 in
          for seed = 1 to 30 do
            let r = Goruntime.Interp.run ~seed prog in
            if r.leaked = [] then begin
              total := !total + r.steps;
              incr n
            end
          done;
          if !n = 0 then None
          else Some (float_of_int !total /. float_of_int !n)
        in
        match (steps a.source, steps patched) with
        | Some s0, Some s1 ->
            let ov = 100. *. (s1 -. s0) /. max 1. s0 in
            Printf.printf "%-26s %12.1f %12.1f %9.2f%%\n" name s0 s1 ov;
            Some ov
        | _ ->
            Printf.printf "%-26s (no leak-free schedule to compare)\n" name;
            None)
      overhead_cases
  in
  match overheads with
  | [] -> ()
  | _ ->
      let avg =
        List.fold_left ( +. ) 0. overheads
        /. float_of_int (List.length overheads)
      in
      let mx = List.fold_left max neg_infinity overheads in
      Printf.printf "\navg %.2f%%  max %.2f%%   (paper: avg 0.26%%, max 3.77%%)\n"
        avg mx

(* ------------------------------------------------------------- E7 --- *)

let e7 () =
  header
    "E7 | Patch readability: changed source lines per strategy (paper: S1 = 1,\n\
    \   | S2 = 4, S3 avg 10.3 max 16; overall avg 2.67)";
  let by_strategy = Hashtbl.create 4 in
  List.iter
    (fun (s : Score.app_score) ->
      List.iter
        (fun (_, o) ->
          match o with
          | G.Fixed f ->
              let cur =
                Option.value
                  (Hashtbl.find_opt by_strategy f.strategy)
                  ~default:[]
              in
              Hashtbl.replace by_strategy f.strategy (f.changed_lines :: cur)
          | G.Not_fixed _ -> ())
        s.fix_details)
    (Lazy.force scores);
  let all = ref [] in
  List.iter
    (fun (strat, paper) ->
      match Hashtbl.find_opt by_strategy strat with
      | Some lines ->
          all := lines @ !all;
          let n = List.length lines in
          let avg =
            float_of_int (List.fold_left ( + ) 0 lines) /. float_of_int n
          in
          let mx = List.fold_left max 0 lines in
          Printf.printf "%-38s n=%3d  avg %.2f  max %d   (paper: %s)\n"
            (G.strategy_str strat) n avg mx paper
      | None -> Printf.printf "%-38s none generated\n" (G.strategy_str strat))
    [
      (G.S1_increase_buffer, "always 1");
      (G.S2_defer_op, "4");
      (G.S3_add_stop, "avg 10.3, max 16");
    ];
  match !all with
  | [] -> ()
  | lines ->
      Printf.printf "\noverall avg %.2f changed lines   (paper: 2.67)\n"
        (float_of_int (List.fold_left ( + ) 0 lines)
        /. float_of_int (List.length lines))

(* ------------------------------------------------------------- E8 --- *)

let e8 () =
  header
    "E8 | GFix execution time (paper: ~98% of patch generation is SSA/alias\n\
    \   | preprocessing; the source transformation itself is fast)";
  Printf.printf "%-14s %14s %14s %10s\n" "app" "preproc (s)" "patching (s)"
    "% preproc";
  let apps = [ "docker"; "etcd"; "go"; "grpc" ] in
  (* a private engine: E8 measures *cold* preprocessing, so it must not
     be served compiles cached by earlier experiments *)
  let cold = E.create () in
  List.iter
    (fun name ->
      let app = Option.get (Gocorpus.Apps.find name) in
      let t0 = Clock.now_s () in
      (* preprocessing: parse, type check, lower, alias, call graph, and
         detection — everything GFix consumes *)
      let a = Gcatch.Driver.analyse_with cold ~name app.sources in
      let t1 = Clock.now_s () in
      ignore (G.fix_all a.source a.bmoc);
      let t2 = Clock.now_s () in
      let pre = t1 -. t0 and fix = t2 -. t1 in
      Printf.printf "%-14s %14.3f %14.3f %9.1f%%\n" name pre fix
        (100. *. pre /. max 1e-9 (pre +. fix)))
    apps

(* ----------------------------------------------------------- micro --- *)

let micro () =
  header
    "micro | per-stage timings (Bechamel test definitions, mean of 25 runs)";
  let open Bechamel in
  let fig1_src =
    "package p\n"
    ^ (Gocorpus.Patterns.instantiate Gocorpus.Patterns.P_single_send_select 1)
        .src
  in
  let parsed =
    Minigo.Typecheck.check_program (Minigo.Parser.parse_string fig1_src)
  in
  let ir = Goir.Lower.lower_program parsed in
  let bbolt = Option.get (Gocorpus.Apps.find "bbolt") in
  let tests =
    [
      Test.make ~name:"parse+typecheck figure-1"
        (Staged.stage (fun () ->
             ignore
               (Minigo.Typecheck.check_program
                  (Minigo.Parser.parse_string fig1_src))));
      Test.make ~name:"lower to IR"
        (Staged.stage (fun () -> ignore (Goir.Lower.lower_program parsed)));
      Test.make ~name:"alias analysis"
        (Staged.stage (fun () -> ignore (Goanalysis.Alias.analyse ir)));
      Test.make ~name:"BMOC detection (figure-1)"
        (Staged.stage (fun () -> ignore (Gcatch.Bmoc.detect ir)));
      Test.make ~name:"full analysis (bbolt, cached compile)"
        (Staged.stage (fun () ->
             ignore (analyse ~name:"bbolt" bbolt.sources)));
      Test.make ~name:"engine artifact lookup (cache hit)"
        (Staged.stage (fun () ->
             ignore (E.artifacts (Lazy.force engine) ~name:"bbolt" bbolt.sources)));
      Test.make ~name:"run figure-1 on the scheduler"
        (Staged.stage (fun () ->
             ignore (Goruntime.Interp.run ~entry:"ExecTask1" parsed)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  (* Compact before sampling: per-sample GC stabilization costs are
     proportional to the live heap, so any garbage left by previously
     run experiments would be billed to every sample here. *)
  Gc.compact ();
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) ~kde:None ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let t0 = Clock.now_s () in
      let raw = Benchmark.all cfg [ instance ] test in
      let wall = Clock.elapsed_since t0 in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ ns_per_run ] ->
              Printf.printf "%-38s %12.3f ms/run  (r² %s, %4.1fs)\n" name
                (ns_per_run /. 1e6)
                (match Analyze.OLS.r_square result with
                | Some r -> Printf.sprintf "%.3f" r
                | None -> "-")
                wall
          | _ -> Printf.printf "%-38s (no estimate)\n" name)
        results)
    tests

(* ---------------------------------------------------- e2 parallel --- *)

(* Scalability of the detector fan-out: the largest corpus app analysed
   through the full pass registry at jobs=1/2/4.  Compilation happens
   outside the timer (each engine's artifact cache is pre-filled), so the
   measured time is detection only — the part the pool parallelises.
   The diagnostics JSON must be byte-identical across job counts. *)
type par_point = {
  pp_jobs : int;
  pp_seconds : float;
  pp_diags : string;
  pp_passes : (string * float) list; (* per-pass wall time, seconds *)
}

type par_result = {
  par_app : string;
  par_loc : int;
  par_points : par_point list;
  par_identical : bool;
}

let par_result : par_result option ref = ref None

let e2par () =
  header
    "E2p | Parallel detection: largest corpus app through the full pass
    \    | registry at --jobs 1/2/4 (byte-identical diagnostics required)";
  let apps = Gocorpus.Apps.all () in
  let app =
    List.fold_left
      (fun (acc : Gocorpus.Apps.app) (a : Gocorpus.Apps.app) ->
        if a.loc > acc.loc then a else acc)
      (List.hd apps) apps
  in
  Printf.printf "app: %s (%d LoC); hardware threads: %d

" app.spec.name
    app.loc
    (Domain.recommended_domain_count ());
  Printf.printf "%6s %12s %10s
" "jobs" "time (s)" "speedup";
  let points =
    List.map
      (fun jobs ->
        let e = E.create ~passes:(Gcatch.Passes.all ()) ~jobs () in
        (* compile outside the timer *)
        let a = E.artifacts e ~name:app.spec.name app.sources in
        ignore (Lazy.force a.E.a_callgraph);
        let t0 = Clock.now_s () in
        let r = E.analyse e ~name:app.spec.name app.sources in
        let dt = Clock.elapsed_since t0 in
        {
          pp_jobs = jobs;
          pp_seconds = dt;
          pp_diags = D.list_to_json r.E.r_diags;
          pp_passes =
            List.map
              (fun (pr : E.pass_run) -> (pr.E.pr_pass, pr.E.pr_elapsed_s))
              r.E.r_passes;
        })
      [ 1; 2; 4 ]
  in
  let base = (List.hd points).pp_seconds in
  List.iter
    (fun p ->
      Printf.printf "%6d %12.3f %9.2fx
" p.pp_jobs p.pp_seconds
        (base /. max 1e-9 p.pp_seconds))
    points;
  let identical =
    List.for_all (fun p -> p.pp_diags = (List.hd points).pp_diags) points
  in
  Printf.printf "
diagnostics byte-identical across jobs: %b
" identical;
  if not identical then failwith "e2par: diagnostics differ across job counts";
  par_result :=
    Some
      {
        par_app = app.spec.name;
        par_loc = app.loc;
        par_points = points;
        par_identical = identical;
      }

(* ------------------------------------------------------- E-incr --- *)

(* The PR-4 incremental tier: per-channel verdicts are content-addressed
   and cached (memory tier always; disk tier under a cache dir), so a
   warm re-run of an unchanged program resolves every channel without
   touching the solver.  Measured per app: a cold run (empty cache), a
   warm run (memory tier), and a warm-from-disk run (memory tier
   dropped, simulating a fresh process). *)
type incr_point = {
  ip_app : string;
  ip_cold_s : float;
  ip_warm_s : float;
  ip_disk_s : float;
  ip_hits : int;   (* cache hits during the warm (memory) run *)
  ip_misses : int; (* misses during the cold run = distinct problems *)
}

let incr_results : incr_point list ref = ref []

let counter_now name =
  match
    List.assoc_opt name (Goobs.Metrics.counters_list Goobs.Metrics.default)
  with
  | Some v -> v
  | None -> 0

let eincr () =
  header
    "E-incr | Incremental solving and the solve cache: cold vs warm\n\
    \       | detection, memory tier and warm-from-disk (PR 4)";
  let apps = [ "bbolt"; "grpc"; "go-ethereum" ] in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcatch-bench-cache-%d" (Unix.getpid ()))
  in
  let clear_dir () =
    if Sys.file_exists dir then
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir)
  in
  clear_dir ();
  Printf.printf "%-14s %10s %10s %10s %9s %7s %7s\n" "app" "cold (s)"
    "warm (s)" "disk (s)" "speedup" "miss" "hit";
  let results =
    List.map
      (fun name ->
        let app = Option.get (Gocorpus.Apps.find name) in
        let a = E.artifacts (Lazy.force engine) ~name app.sources in
        let ir = Lazy.force a.E.a_ir in
        let cfg = { Gcatch.Bmoc.default_config with cache_dir = Some dir } in
        Gcatch.Solve_cache.reset_memory ();
        let m0 = counter_now "bmoc.solve_cache_miss" in
        let t0 = Clock.now_s () in
        let bugs_cold, _ = Gcatch.Bmoc.detect ~cfg ir in
        let cold = Clock.elapsed_since t0 in
        let misses = counter_now "bmoc.solve_cache_miss" - m0 in
        let h0 = counter_now "bmoc.solve_cache_hit" in
        let t0 = Clock.now_s () in
        let bugs_warm, _ = Gcatch.Bmoc.detect ~cfg ir in
        let warm = Clock.elapsed_since t0 in
        let hits = counter_now "bmoc.solve_cache_hit" - h0 in
        (* drop the memory tier: the next run is served from disk *)
        Gcatch.Solve_cache.reset_memory ();
        let t0 = Clock.now_s () in
        let bugs_disk, _ = Gcatch.Bmoc.detect ~cfg ir in
        let disk = Clock.elapsed_since t0 in
        let same bugs =
          List.map R.bmoc_str bugs = List.map R.bmoc_str bugs_cold
        in
        if not (same bugs_warm && same bugs_disk) then
          failwith ("e-incr: warm verdicts differ from cold on " ^ name);
        Printf.printf "%-14s %10.3f %10.3f %10.3f %8.1fx %7d %7d\n" name cold
          warm disk
          (cold /. max 1e-6 warm)
          misses hits;
        {
          ip_app = name;
          ip_cold_s = cold;
          ip_warm_s = warm;
          ip_disk_s = disk;
          ip_hits = hits;
          ip_misses = misses;
        })
      apps
  in
  clear_dir ();
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  incr_results := results;
  let tot f = List.fold_left (fun acc p -> acc +. f p) 0. results in
  Printf.printf
    "\ntotal: cold %.3fs, warm %.3fs (%.0fx), warm-from-disk %.3fs (%.0fx)\n\
     (verdicts checked identical across all three runs)\n"
    (tot (fun p -> p.ip_cold_s))
    (tot (fun p -> p.ip_warm_s))
    (tot (fun p -> p.ip_cold_s) /. max 1e-6 (tot (fun p -> p.ip_warm_s)))
    (tot (fun p -> p.ip_disk_s))
    (tot (fun p -> p.ip_cold_s) /. max 1e-6 (tot (fun p -> p.ip_disk_s)))

(* --------------------------------------------------------- E-fe --- *)

(* The PR-7 parallel incremental frontend: a ~100k LoC synthetic app
   (corpus filler, split over many files) compiled per file through the
   effects scheduler with per-file content-addressed caching.  Measured:
   cold end-to-end analysis at jobs 1/2/4 with the per-stage wall-time
   breakdown (diagnostics must be byte-identical), then the incremental
   path — a cold run that fills a disk cache dir, a one-file edit, and a
   re-analysis through a fresh engine (simulating a fresh process):
   every unedited file's lex/parse/typecheck is served from the cache
   and only the edited file recompiles. *)
type fe_point = {
  fp_jobs : int;
  fp_seconds : float;
  fp_stages : (string * float) list; (* per-stage wall time, ms *)
  fp_diags : string;
}

type fe_result = {
  fe_files : int;
  fe_loc : int;
  fe_points : fe_point list; (* cold, jobs 1/2/4 *)
  fe_cold_s : float; (* cold run that fills the disk tier (jobs 1) *)
  fe_warm_s : float; (* one-file edit, fresh engine, warm disk tier *)
  fe_warm_lex_runs : int; (* files re-lexed on the warm run *)
  fe_identical : bool; (* diags identical across jobs and cold/warm *)
}

let fe_result : fe_result option ref = ref None

let fe_stages =
  [ "lex"; "parse"; "sig"; "typecheck"; "lower"; "assemble"; "facts";
    "alias"; "callgraph" ]

let efe () =
  header
    "E-fe | Parallel incremental frontend: ~100k LoC synthetic app,\n\
    \     | per-file compilation at jobs 1/2/4, then a one-file edit\n\
    \     | against a warm per-file disk cache (PR 7)";
  let nfiles = 50 and per_file = 2000 in
  let sources =
    List.init nfiles (fun i ->
        "package app\n"
        ^ Gocorpus.Filler.generate ~seed:i ~target_lines:per_file)
  in
  let loc =
    List.fold_left
      (fun acc s -> acc + List.length (String.split_on_char '\n' s))
      0 sources
  in
  Printf.printf "app: %d file(s), %d LoC; hardware threads: %d\n\n" nfiles loc
    (Domain.recommended_domain_count ());
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcatch-bench-fe-%d" (Unix.getpid ()))
  in
  let clear_dir () =
    if Sys.file_exists dir then
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir)
  in
  (* a fresh engine per measurement: empty memory tiers, so a run with
     no cache dir is genuinely cold and a cached run measures the disk
     tier alone (as a fresh process would see it) *)
  let analyse_fresh ~jobs ~cache_dir srcs =
    Gcatch.Solve_cache.reset_memory ();
    let cfg = { Gcatch.Bmoc.default_config with cache_dir } in
    let e = Gcatch.Passes.engine ~cfg ~jobs () in
    let t0 = Clock.now_s () in
    let r = E.analyse e ~name:"fe-app" srcs in
    (e, r, Clock.elapsed_since t0)
  in
  Printf.printf "%6s %12s %10s %12s\n" "jobs" "cold (s)" "kLoC/s" "stages";
  let points =
    List.map
      (fun jobs ->
        let e, r, dt = analyse_fresh ~jobs ~cache_dir:None sources in
        let reg = E.registry e in
        let stages =
          List.filter_map
            (fun s ->
              let ms =
                Goobs.Metrics.h_sum
                  (Goobs.Metrics.histogram reg ("stage." ^ s ^ ".ms"))
              in
              if ms > 0.0 then Some (s, ms) else None)
            fe_stages
        in
        Printf.printf "%6d %12.3f %10.1f %12s\n" jobs dt
          (float_of_int loc /. 1000.0 /. max 1e-9 dt)
          (String.concat " "
             (List.map (fun (s, ms) -> Printf.sprintf "%s=%.0fms" s ms) stages));
        {
          fp_jobs = jobs;
          fp_seconds = dt;
          fp_stages = stages;
          fp_diags = D.list_to_json r.E.r_diags;
        })
      [ 1; 2; 4 ]
  in
  let jobs_identical =
    List.for_all (fun p -> p.fp_diags = (List.hd points).fp_diags) points
  in
  if not jobs_identical then
    failwith "e-fe: diagnostics differ across job counts";
  (* the incremental path: cold run fills the disk tier, then one file
     gains a trailing comment and a fresh engine re-analyses *)
  clear_dir ();
  let _, r_cold, cold = analyse_fresh ~jobs:1 ~cache_dir:(Some dir) sources in
  let edited =
    List.mapi
      (fun i s -> if i = nfiles - 1 then s ^ "// trailing edit\n" else s)
      sources
  in
  let e_warm, r_warm, warm =
    analyse_fresh ~jobs:1 ~cache_dir:(Some dir) edited
  in
  let lex_runs = E.counter_value e_warm "stage.lex.runs" in
  let warm_identical =
    D.list_to_json r_warm.E.r_diags = D.list_to_json r_cold.E.r_diags
  in
  clear_dir ();
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  Printf.printf
    "\nincremental (one-file edit, fresh engine, warm disk tier):\n\
    \  cold %.3fs (%.1f kLoC/s)  warm %.3fs (%.1f kLoC/s)  speedup %.1fx\n\
    \  files re-lexed on the warm run: %d of %d\n\
     diagnostics identical across jobs and cold/warm: %b\n"
    cold
    (float_of_int loc /. 1000.0 /. max 1e-9 cold)
    warm
    (float_of_int loc /. 1000.0 /. max 1e-9 warm)
    (cold /. max 1e-9 warm)
    lex_runs nfiles
    (jobs_identical && warm_identical);
  if not warm_identical then
    failwith "e-fe: warm diagnostics differ from cold";
  if lex_runs <> 1 then
    failwith
      (Printf.sprintf "e-fe: warm run re-lexed %d file(s), expected 1"
         lex_runs);
  fe_result :=
    Some
      {
        fe_files = nfiles;
        fe_loc = loc;
        fe_points = points;
        fe_cold_s = cold;
        fe_warm_s = warm;
        fe_warm_lex_runs = lex_runs;
        fe_identical = jobs_identical && warm_identical;
      }

(* E-robust (PR 5): supervision-boundary overhead on the clean path.
   Two places the resilience layer could tax a healthy run: the
   per-function fault boundary in the traditional checkers, and the
   fault sites' fast path (one atomic load per trigger — worst case an
   armed plan that never matches, which adds a spec scan per trigger).
   Both are measured as medians over repeated runs; the acceptance
   target is < 1 % (EXPERIMENTS.md E-robust). *)
type robust_point = {
  rp_app : string;
  rp_bare_s : float;    (* five checkers, no metrics registry (bare) *)
  rp_guarded_s : float; (* same walks behind per-function boundaries *)
  rp_clean_s : float;   (* BMOC detection, no fault plan armed *)
  rp_armed_s : float;   (* BMOC detection, armed never-firing plan *)
}

let robust_results : robust_point list ref = ref []

let erobust () =
  header
    "E-robust | Supervision-boundary overhead on the clean path:\n\
    \         | bare vs guarded checker walks, unarmed vs armed-but-\n\
    \         | never-firing fault plan (PR 5)";
  let apps = [ "bbolt"; "grpc"; "go-ethereum" ] in
  let reps = 9 in
  let median l =
    let a = List.sort compare l in
    List.nth a (List.length a / 2)
  in
  (* the checker walks are sub-millisecond; batch them per sample so the
     clock reads work, not timer granularity *)
  let walk_batch = 50 in
  let time ?(n = 1) f =
    let t0 = Clock.now_s () in
    for _ = 1 to n do
      ignore (f ())
    done;
    Clock.elapsed_since t0 /. float_of_int n
  in
  let med ?n f = median (List.init reps (fun _ -> time ?n f)) in
  let pct over base = 100.0 *. ((over /. max 1e-9 base) -. 1.0) in
  Printf.printf "%-14s %10s %10s %7s %10s %10s %7s %9s\n" "app" "bare (ms)"
    "guard (ms)" "ovh" "clean (s)" "armed (s)" "ovh" "ovh/run";
  let results =
    List.map
      (fun name ->
        let app = Option.get (Gocorpus.Apps.find name) in
        let a = E.artifacts (Lazy.force engine) ~name app.sources in
        let ir = Lazy.force a.E.a_ir in
        let alias = Lazy.force a.E.a_alias in
        let cg = Lazy.force a.E.a_callgraph in
        let prims = Gcatch.Primitives.collect ir alias in
        let walk ?metrics () =
          List.length
            (Gcatch.Traditional.check_missing_unlock ?metrics prims alias ir)
          + List.length
              (Gcatch.Traditional.check_double_lock ?metrics prims alias cg ir)
          + List.length
              (Gcatch.Traditional.check_conflicting_order ?metrics prims alias
                 ir)
          + List.length
              (Gcatch.Traditional.check_field_race ?metrics prims alias ir)
          + List.length (Gcatch.Traditional.check_fatal_in_child ?metrics ir)
        in
        let bare = med ~n:walk_batch (fun () -> walk ()) in
        let reg = Goobs.Metrics.create () in
        let guarded = med ~n:walk_batch (fun () -> walk ~metrics:reg ()) in
        (* the solve cache would hide the solver work the fast path sits
           in; detection must actually reach every fault site *)
        let cfg = { Gcatch.Bmoc.default_config with solve_cache = false } in
        let clean = med (fun () -> Gcatch.Bmoc.detect ~cfg ir) in
        (match Goengine.Faults.parse "solver:*@zz-never-matches!raise" with
        | Ok specs -> Goengine.Faults.set_plan specs
        | Error e -> failwith e);
        let armed = med (fun () -> Gcatch.Bmoc.detect ~cfg ir) in
        Goengine.Faults.clear ();
        Printf.printf
          "%-14s %10.4f %10.4f %6.1f%% %10.4f %10.4f %6.1f%% %8.2f%%\n" name
          (1000. *. bare) (1000. *. guarded) (pct guarded bare) clean armed
          (pct armed clean)
          (* the per-function boundary's absolute cost as a share of one
             whole detection run — the number the < 1 % target is about *)
          (100.0 *. (guarded -. bare) /. max 1e-9 clean);
        {
          rp_app = name;
          rp_bare_s = bare;
          rp_guarded_s = guarded;
          rp_clean_s = clean;
          rp_armed_s = armed;
        })
      apps
  in
  robust_results := results;
  let tot f = List.fold_left (fun acc p -> acc +. f p) 0. results in
  Printf.printf
    "\ntotal: per-function boundaries cost %+.3f ms over %.1f ms of \
     detection (%+.2f%% of a run);\narmed-but-silent fault plan %+.2f%% vs \
     unarmed\n"
    (1000. *. (tot (fun p -> p.rp_guarded_s) -. tot (fun p -> p.rp_bare_s)))
    (1000. *. tot (fun p -> p.rp_clean_s))
    (100.0
    *. (tot (fun p -> p.rp_guarded_s) -. tot (fun p -> p.rp_bare_s))
    /. max 1e-9 (tot (fun p -> p.rp_clean_s)))
    (pct (tot (fun p -> p.rp_armed_s)) (tot (fun p -> p.rp_clean_s)))

(* ------------------------------------------------------- E-sched --- *)

(* The PR-6 effects scheduler: nested fan-out with deliberately skewed
   per-channel costs.  Under the old barrier pool an inner per-channel
   map collapsed to an inline loop, so a 10x channel serialised its
   whole group behind it; under the scheduler the inner fan-out forks
   real stealable tasks and the skew is absorbed by whichever domains
   are free.  Both variants run through [with_scheduler] so the
   comparison isolates exactly the nested-fan-out semantics (outer-only
   parallelism vs full nesting), not session setup. *)
type sched_point = {
  sp_outer : int;
  sp_inner : int;
  sp_skew : int;
  sp_barrier_s : float;
  sp_sched_s : float;
  sp_spawned : int;
  sp_stolen : int;
}

let sched_result : sched_point option ref = ref None

let esched () =
  header
    "E-sched | Effects scheduler: nested fan-out with skewed channel\n\
    \        | costs (one 10x channel) at jobs 4 - barrier-style\n\
    \        | outer-only parallelism vs nested scheduling (PR 6)";
  let pool = Pool.get ~jobs:4 in
  let inner_costs = [ 10; 1; 1; 1; 1; 1; 1; 1 ] in
  let outer = 2 in
  let groups = List.init outer (fun _ -> inner_costs) in
  (* one cost unit of deterministic integer churn standing in for a
     per-channel solve; [opaque_identity] keeps it from being folded *)
  let spin = 40_000 in
  let work cost =
    let acc = ref 0 in
    for _ = 1 to cost * spin do
      acc := Sys.opaque_identity ((!acc * 1103515245) + 12345)
    done;
    !acc
  in
  let barrier () =
    (* the old pool's nested-map semantics: outer parallel, inner inline *)
    Pool.with_scheduler ~pool (fun () ->
        Pool.map ~pool (fun g -> List.map work g) groups)
  in
  let sched () =
    Pool.with_scheduler ~pool (fun () ->
        Pool.map ~pool (fun g -> Pool.map ~pool work g) groups)
  in
  if barrier () <> sched () then failwith "e-sched: variant results differ";
  let reps = 7 in
  let median l = List.nth (List.sort compare l) (List.length l / 2) in
  let time f =
    let t0 = Clock.now_s () in
    ignore (f ());
    Clock.elapsed_since t0
  in
  let med f = median (List.init reps (fun _ -> time f)) in
  let b = med barrier in
  let spawned0 = counter_now "sched.tasks_spawned" in
  let stolen0 = counter_now "sched.tasks_stolen" in
  let s = med sched in
  let spawned = counter_now "sched.tasks_spawned" - spawned0 in
  let stolen = counter_now "sched.tasks_stolen" - stolen0 in
  Printf.printf
    "outer groups: %d; channels/group: %d (one 10x); jobs: 4; hardware \
     threads: %d\n\n"
    outer
    (List.length inner_costs)
    (Domain.recommended_domain_count ());
  Printf.printf "%-24s %10s\n" "variant" "med (ms)";
  Printf.printf "%-24s %10.3f\n" "barrier (outer only)" (1000. *. b);
  Printf.printf "%-24s %10.3f\n" "scheduler (nested)" (1000. *. s);
  Printf.printf
    "\nspeedup: %.2fx; %d task(s) spawned, %d stolen over %d scheduled \
     rep(s)\n"
    (b /. max 1e-9 s)
    spawned stolen reps;
  sched_result :=
    Some
      {
        sp_outer = outer;
        sp_inner = List.length inner_costs;
        sp_skew = 10;
        sp_barrier_s = b;
        sp_sched_s = s;
        sp_spawned = spawned;
        sp_stolen = stolen;
      }

(* ------------------------------------------------------- E-obs2 --- *)

(* Goscope v2 overhead: the full observability stack (HTTP telemetry
   endpoint + JSONL run journal + sampling profiler) armed vs a bare
   run, on the e-fe synthetic app.  The acceptance target is < 2 % wall
   overhead (EXPERIMENTS.md E-obs2); diagnostics must stay
   byte-identical, and /metrics must serve live data from the armed
   run's process. *)
type obs2_point = {
  ob_files : int;
  ob_loc : int;
  ob_base_s : float;
  ob_obs_s : float;
  ob_overhead_pct : float; (* median of paired armed/bare ratios *)
  ob_journal_events : int;
  ob_samples : int;
  ob_identical : bool;
}

let obs2_result : obs2_point option ref = ref None

let eobs2 () =
  header
    "E-obs2 | Goscope v2 overhead: telemetry endpoint + JSONL journal\n\
    \       | + sampling profiler armed vs bare run, jobs 4 (PR 8)";
  let nfiles = 50 and per_file = 2000 in
  let sources =
    List.init nfiles (fun i ->
        "package app\n"
        ^ Gocorpus.Filler.generate ~seed:i ~target_lines:per_file)
  in
  let loc =
    List.fold_left
      (fun acc s -> acc + List.length (String.split_on_char '\n' s))
      0 sources
  in
  Printf.printf "app: %d file(s), %d LoC; hardware threads: %d\n\n" nfiles loc
    (Domain.recommended_domain_count ());
  let reps = 15 in
  let analyse_once () =
    (* a fresh engine and a cold solve memo per rep: both variants do
       the full compile + solve work every time.  The major heap is
       settled first so neither variant inherits the other's GC debt. *)
    Gcatch.Solve_cache.reset_memory ();
    Gc.full_major ();
    let e = Gcatch.Passes.engine ~jobs:4 () in
    let t0 = Clock.now_s () in
    let r = E.analyse e ~name:"obs-app" sources in
    (D.list_to_json r.E.r_diags, Clock.elapsed_since t0)
  in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i =
      i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
    in
    go 0
  in
  let jpath = Filename.temp_file "gcatch-bench-obs" ".jsonl" in
  let handlers =
    [
      ( "/metrics",
        fun () ->
          Goobs.Telemetry.text
            (Goobs.Metrics.to_prometheus Goobs.Metrics.default) );
      ( "/healthz",
        fun () ->
          let ok, body = Goengine.Supervise.healthz_json () in
          Goobs.Telemetry.json ~status:(if ok then 200 else 503) body );
    ]
  in
  (* one armed rep: the whole stack up the way `gcatch --telemetry-addr
     ... --journal ... --sample-hz 97` arms it, torn down afterwards;
     only the analysis itself is timed *)
  Goobs.Sampler.reset ();
  let run_armed () =
    let srv =
      match Goobs.Telemetry.start ~addr:"127.0.0.1:0" ~handlers () with
      | Ok t -> t
      | Error e -> failwith ("e-obs2: telemetry start: " ^ e)
    in
    Goobs.Trace.enable_spines ();
    let sampler = Goobs.Sampler.start ~hz:97 in
    Goobs.Journal.open_ ~path:jpath;
    let out = analyse_once () in
    let code, body = Goobs.Telemetry.fetch srv "/metrics" in
    if code <> 200 || not (contains ~needle:"gcatch_" body) then
      failwith "e-obs2: /metrics did not serve live data";
    let hcode, _ = Goobs.Telemetry.fetch srv "/healthz" in
    if hcode <> 200 then failwith "e-obs2: /healthz not healthy";
    Goobs.Journal.close ();
    Goobs.Sampler.stop sampler;
    Goobs.Trace.disable ();
    Goobs.Telemetry.stop srv;
    out
  in
  (* wall-clock on a shared box drifts over seconds (thermal, noisy
     neighbours), so each bare run is paired with an adjacent armed run
     and the drift cancels in the per-pair ratio; the order inside a
     pair alternates so residual within-pair drift cancels across pairs
     too.  The median ratio is the overhead estimate, the minima are
     reported for scale. *)
  let pairs =
    List.init reps (fun i ->
        if i mod 2 = 0 then (analyse_once (), run_armed ())
        else
          let o = run_armed () in
          let b = analyse_once () in
          (b, o))
  in
  let minimum l = List.fold_left min (List.hd l) (List.tl l) in
  let base = minimum (List.map (fun ((_, t), _) -> t) pairs) in
  let obs = minimum (List.map (fun (_, (_, t)) -> t) pairs) in
  let ratios =
    List.sort compare
      (List.map (fun ((_, b), (_, o)) -> o /. max 1e-9 b) pairs)
  in
  let ratio = List.nth ratios (List.length ratios / 2) in
  let base_diags = fst (fst (List.hd pairs)) in
  let obs_diags = fst (snd (List.hd pairs)) in
  let samples = Goobs.Sampler.total_samples () in
  Goobs.Sampler.reset ();
  let jevents = (Goobs.Journal.summarize_file jpath).Goobs.Journal.s_events in
  (try Sys.remove jpath with Sys_error _ -> ());
  let identical = obs_diags = base_diags in
  let overhead = 100.0 *. (ratio -. 1.0) in
  Printf.printf "%-28s %10s %10s\n"
    (Printf.sprintf "variant (min of %d)" reps)
    "wall (s)" "kLoC/s";
  Printf.printf "%-28s %10.3f %10.1f\n" "bare" base
    (float_of_int loc /. 1000.0 /. max 1e-9 base);
  Printf.printf "%-28s %10.3f %10.1f\n" "telemetry+journal+sampler" obs
    (float_of_int loc /. 1000.0 /. max 1e-9 obs);
  Printf.printf
    "\noverhead: %+.2f%% (target < 2%%); %d journal event(s)/run, %d stack \
     sample(s) @ 97 Hz\ndiagnostics identical with observers armed: %b\n"
    overhead jevents samples identical;
  if not identical then
    failwith "e-obs2: diagnostics differ with observers armed";
  obs2_result :=
    Some
      {
        ob_files = nfiles;
        ob_loc = loc;
        ob_base_s = base;
        ob_obs_s = obs;
        ob_overhead_pct = overhead;
        ob_journal_events = jevents;
        ob_samples = samples;
        ob_identical = identical;
      }

(* ---------------------------------------------------- E-serve (PR 9) --- *)

type serve_point = {
  vp_clients : int;
  vp_requests : int;
  vp_seconds : float;
  vp_rps : float;
  vp_p50_ms : float;
  vp_p95_ms : float;
}

type serve_result = {
  sv_files : int;
  sv_loc : int;
  sv_cold_s : float; (* one-shot analysis, fresh engine *)
  sv_first_req_s : float; (* daemon's first (cold) request *)
  sv_steady_s : float; (* median warm one-file-edit request *)
  sv_hot_s : float; (* repeated identical request (artifact hit) *)
  sv_identical : bool; (* daemon jobs 1/4 diags == one-shot bytes *)
  sv_points : serve_point list;
  sv_soak_requests : int;
  sv_soak_evictions : int;
  sv_soak_heap_mb : float;
  sv_soak_stable : bool;
}

let serve_result : serve_result option ref = ref None

type chaos_result = {
  ch_files : int;
  ch_loc : int;
  ch_cold_edit_s : float; (* one-file edit on a cold restarted daemon *)
  ch_warm_edit_s : float; (* same edit after a snapshot reload *)
  ch_restart_speedup : float;
  ch_restart_identical : bool; (* warm edit diags == one-shot bytes *)
  ch_clients : int;
  ch_requests : int; (* soak requests attempted *)
  ch_succeeded : int; (* eventual 200s *)
  ch_availability : float;
  ch_p95_ms : float; (* eventual-success latency incl. retries *)
  ch_rebuilds : int; (* serve.engine_rebuilds delta over the storm *)
  ch_soak_identical : bool; (* every success byte-identical to one-shot *)
}

let chaos_result : chaos_result option ref = ref None

let eserve () =
  header
    "E-serve | gcatchd warm-process serving: cold one-shot vs steady-state\n\
    \       | daemon latency on the e-fe app, sustained throughput at\n\
    \       | 1/4/16 clients, and a 200-request soak under --max-cache-mb\n\
    \       | (PR 9)";
  let module Serve = Goserve.Serve in
  let module Proto = Goserve.Proto in
  let module T = Goobs.Telemetry in
  let module M = Goobs.Metrics in
  let body_of sources =
    let b = Buffer.create (1 lsl 16) in
    Buffer.add_string b
      "{\"schema\":\"gcatch-serve/1\",\"name\":\"cli\",\"files\":[";
    List.iteri
      (fun i src ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "{\"path\":\"f%d.go\",\"src\":\"%s\"}" i
             (D.json_escape src)))
      sources;
    Buffer.add_string b "]}";
    Buffer.contents b
  in
  let rq body = { T.rq_path = "/analyse"; rq_headers = []; rq_body = body } in
  let diag_bytes body =
    match Proto.member_raw "run" body with
    | None -> failwith "e-serve: response has no run member"
    | Some run -> (
        match Proto.member_raw "diagnostics" run with
        | None -> failwith "e-serve: run has no diagnostics member"
        | Some d -> d)
  in
  let timed_post srv body =
    let t0 = Clock.now_s () in
    let r = Serve.handle_analyse srv (rq body) in
    let dt = Clock.elapsed_since t0 in
    if r.T.status <> 200 then
      failwith (Printf.sprintf "e-serve: status %d: %s" r.T.status r.T.body);
    (r, dt)
  in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then nan
    else
      let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) idx))
  in
  (* the same ~172 kLoC synthetic app e-fe measures, so the cold/steady
     comparison lines up with the frontend numbers *)
  let nfiles = 50 and per_file = 2000 in
  let sources =
    List.init nfiles (fun i ->
        "package app\n"
        ^ Gocorpus.Filler.generate ~seed:i ~target_lines:per_file)
  in
  let loc =
    List.fold_left
      (fun acc s -> acc + List.length (String.split_on_char '\n' s))
      0 sources
  in
  Printf.printf "app: %d file(s), %d LoC; hardware threads: %d\n\n" nfiles loc
    (Domain.recommended_domain_count ());
  (* cold one-shot: what `gcatch analyse` costs in a fresh process *)
  Gcatch.Solve_cache.reset_memory ();
  let one_shot = Gcatch.Passes.engine ~jobs:1 ~registry:(M.create ()) () in
  let t0 = Clock.now_s () in
  let r_one = E.analyse one_shot ~name:"cli" sources in
  let cold_s = Clock.elapsed_since t0 in
  let one_shot_diags =
    match Proto.member_raw "diagnostics" (E.run_to_json r_one) with
    | Some d -> d
    | None -> failwith "e-serve: one-shot run has no diagnostics member"
  in
  Printf.printf "cold one-shot (jobs 1): %.3fs (%.1f kLoC/s)\n" cold_s
    (float_of_int loc /. 1000.0 /. max 1e-9 cold_s);
  (* daemon at jobs 4, with the pass-result disk cache a deployed
     gcatchd gets from --cache-dir: the first request fills every tier,
     then steady-state requests each carry a fresh one-line edit of the
     last file — every request misses the whole-run artifact cache and
     re-uses the other 49 files' memos plus the per-function solve
     cache, which is the watch/IDE serving pattern *)
  Gcatch.Solve_cache.reset_memory ();
  let cache_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcatch-bench-serve-%d" (Unix.getpid ()))
  in
  let clear_cache_dir () =
    if Sys.file_exists cache_dir then begin
      Array.iter
        (fun f ->
          try Sys.remove (Filename.concat cache_dir f) with Sys_error _ -> ())
        (Sys.readdir cache_dir);
      try Unix.rmdir cache_dir with Unix.Unix_error _ -> ()
    end
  in
  clear_cache_dir ();
  let detector =
    { Gcatch.Bmoc.default_config with cache_dir = Some cache_dir }
  in
  let cfg4 =
    { Serve.default_cfg with s_jobs = 4; s_max_queue = 64;
      s_detector = detector }
  in
  let srv4 = Serve.create ~cfg:cfg4 () in
  let _, first_req_s = timed_post srv4 (body_of sources) in
  Printf.printf "daemon first request (jobs 4, cold caches): %.3fs\n"
    first_req_s;
  (* steady state = the file-delta payload a watch/IDE client sends: 49
     unchanged files go by digest (the server remembered them on the
     first request), only the edited file carries source.  Each edit is
     unique, so every request misses the whole-run artifact cache and
     exercises the warm per-file memos *)
  let digests = List.map (fun s -> Digest.to_hex (Digest.string s)) sources in
  let last_src = List.nth sources (nfiles - 1) in
  let delta_body n =
    let b = Buffer.create (1 lsl 16) in
    Buffer.add_string b
      "{\"schema\":\"gcatch-serve/1\",\"name\":\"cli\",\"files\":[";
    List.iteri
      (fun i d ->
        if i > 0 then Buffer.add_char b ',';
        if i = nfiles - 1 then
          Buffer.add_string b
            (Printf.sprintf "{\"path\":\"f%d.go\",\"src\":\"%s\"}" i
               (D.json_escape (last_src ^ Printf.sprintf "// edit %d\n" n)))
        else
          Buffer.add_string b
            (Printf.sprintf "{\"path\":\"f%d.go\",\"digest\":\"%s\"}" i d))
      digests;
    Buffer.add_string b "]}";
    Buffer.contents b
  in
  let steady_lat =
    Array.init 9 (fun n -> snd (timed_post srv4 (delta_body n)))
  in
  Array.sort compare steady_lat;
  let steady_s = steady_lat.(Array.length steady_lat / 2) in
  let _, hot_s = timed_post srv4 (delta_body 8) in
  let speedup = cold_s /. max 1e-9 steady_s in
  Printf.printf
    "steady-state (one-file-edit delta payload, warm memos): median %.3fs\n\
     repeat of an already-analysed delta (artifact hit): %.4fs\n\
     steady-state speedup over cold one-shot: %.1fx\n\n"
    steady_s hot_s speedup;
  (* byte identity: the daemon's diagnostics at jobs 1 and jobs 4 must
     reproduce the one-shot bytes, including after the steady-state edits
     have churned the artifact LRU *)
  let r4, _ = timed_post srv4 (body_of sources) in
  let srv1 = Serve.create ~cfg:{ cfg4 with Serve.s_jobs = 1 } () in
  let r1, _ = timed_post srv1 (body_of sources) in
  let identical =
    diag_bytes r4.T.body = one_shot_diags
    && diag_bytes r1.T.body = one_shot_diags
  in
  Printf.printf "daemon diagnostics byte-identical to one-shot (jobs 1,4): %b\n\n"
    identical;
  if not identical then
    failwith "e-serve: daemon diagnostics differ from one-shot";
  (* sustained throughput: a small always-warm app served to 1/4/16
     concurrent clients cycling four request variants; measures the
     serving path (parse, coalesce table, artifact hit, render), with
     execution serialized under the daemon's run lock *)
  let small_app v =
    List.init 8 (fun i ->
        "package app\n"
        ^ Gocorpus.Filler.generate ~seed:(200 + i) ~target_lines:300
        ^ Printf.sprintf "// variant %d\n" v)
  in
  let variants = Array.init 4 (fun v -> body_of (small_app v)) in
  let srv_thr = Serve.create ~cfg:{ cfg4 with Serve.s_jobs = 1 } () in
  Array.iter (fun b -> ignore (timed_post srv_thr b)) variants;
  let total_requests = 96 in
  Printf.printf "%8s %10s %10s %10s %10s\n" "clients" "req/s" "p50 (ms)"
    "p95 (ms)" "wall (s)";
  let points =
    List.map
      (fun clients ->
        let per = max 1 (total_requests / clients) in
        let lats = Array.make (clients * per) 0.0 in
        let t0 = Clock.now_s () in
        let threads =
          List.init clients (fun c ->
              Thread.create
                (fun () ->
                  for i = 0 to per - 1 do
                    let b = variants.((c + i) mod Array.length variants) in
                    let _, dt = timed_post srv_thr b in
                    lats.((c * per) + i) <- dt
                  done)
                ())
        in
        List.iter Thread.join threads;
        let wall = Clock.elapsed_since t0 in
        Array.sort compare lats;
        let n = clients * per in
        let rps = float_of_int n /. max 1e-9 wall in
        let p50 = percentile lats 50.0 *. 1000.0 in
        let p95 = percentile lats 95.0 *. 1000.0 in
        Printf.printf "%8d %10.1f %10.3f %10.3f %10.3f\n" clients rps p50 p95
          wall;
        {
          vp_clients = clients;
          vp_requests = n;
          vp_seconds = wall;
          vp_rps = rps;
          vp_p50_ms = p50;
          vp_p95_ms = p95;
        })
      [ 1; 4; 16 ]
  in
  (* 200-request soak under a deliberately tiny --max-cache-mb: ten
     distinct apps cycle through a budget that cannot hold them all, so
     the LRU must evict; verdict bytes per app must never change *)
  Gcatch.Solve_cache.reset_memory ();
  let soak_cfg =
    {
      Serve.default_cfg with
      s_jobs = 1;
      s_max_cache_mb = 1;
      s_max_artifact_sets = 4;
      s_max_queue = 64;
    }
  in
  let srv_soak = Serve.create ~cfg:soak_cfg () in
  let soak_apps =
    Array.init 10 (fun v ->
        body_of
          (List.init 4 (fun i ->
               "package app\n"
               ^ Gocorpus.Filler.generate
                   ~seed:(300 + (v * 11) + i)
                   ~target_lines:250)))
  in
  let ev () =
    M.value (M.counter M.default "engine.file_mem_evictions")
    + M.value (M.counter M.default "engine.artifact_evictions")
    + M.value (M.counter M.default "bmoc.solve_cache_evictions")
  in
  let ev0 = ev () in
  let first_seen = Array.make (Array.length soak_apps) None in
  let soak_requests = 200 in
  let stable = ref true in
  let max_heap_words = ref 0 in
  for i = 0 to soak_requests - 1 do
    let v = i mod Array.length soak_apps in
    let r, _ = timed_post srv_soak soak_apps.(v) in
    let d = diag_bytes r.T.body in
    (match first_seen.(v) with
    | None -> first_seen.(v) <- Some d
    | Some d0 -> if d <> d0 then stable := false);
    if i mod 20 = 19 then
      max_heap_words := max !max_heap_words (Gc.quick_stat ()).Gc.heap_words
  done;
  (* drop the process-wide solve-cache budget the soak server installed,
     so later experiments run unbounded again *)
  Gcatch.Solve_cache.set_memory_budget_mb 0;
  let evictions = ev () - ev0 in
  let heap_mb =
    float_of_int (!max_heap_words * (Sys.word_size / 8)) /. 1048576.0
  in
  Printf.printf
    "\nsoak: %d requests over %d apps at --max-cache-mb %d:\n\
    \  evictions %d  max heap %.1f MB  verdicts stable %b\n"
    soak_requests
    (Array.length soak_apps)
    soak_cfg.Serve.s_max_cache_mb evictions heap_mb !stable;
  clear_cache_dir ();
  if evictions = 0 then failwith "e-serve: soak produced no evictions";
  if not !stable then failwith "e-serve: soak verdicts changed under LRU";
  if speedup < 10.0 then
    failwith
      (Printf.sprintf "e-serve: steady-state speedup %.1fx below 10x" speedup);
  serve_result :=
    Some
      {
        sv_files = nfiles;
        sv_loc = loc;
        sv_cold_s = cold_s;
        sv_first_req_s = first_req_s;
        sv_steady_s = steady_s;
        sv_hot_s = hot_s;
        sv_identical = identical;
        sv_points = points;
        sv_soak_requests = soak_requests;
        sv_soak_evictions = evictions;
        sv_soak_heap_mb = heap_mb;
        sv_soak_stable = !stable;
      }

(* -------------------------------------------------------- e-chaos --- *)

(* E-chaos (PR 10): crash-only serving.  Two measurements:

   1. Restart warmth — a daemon that snapshotted its warm state and was
      restarted must answer a one-file edit from the reloaded memos at
      least 5x faster than a cold restart answering the same edit, with
      byte-identical diagnostics.

   2. Chaos soak — with connection-level faults recurring (truncated
      writes, dropped reads, stalled accepts), 8 retrying clients must
      still land >= 99% of their requests with byte-identical bodies;
      a solver-fault storm must then trip the quarantine and the
      rebuilt engine must answer correctly. *)
let echaos () =
  header
    "E-chaos | crash-only gcatchd: snapshot restart warmth, availability\n\
    \       | under connection chaos, and quarantine rebuild under a\n\
    \       | solver-fault storm (PR 10)";
  let module Serve = Goserve.Serve in
  let module Snapshot = Goserve.Snapshot in
  let module Proto = Goserve.Proto in
  let module T = Goobs.Telemetry in
  let module M = Goobs.Metrics in
  let module F = Goengine.Faults in
  let body_of sources =
    let b = Buffer.create (1 lsl 16) in
    Buffer.add_string b
      "{\"schema\":\"gcatch-serve/1\",\"name\":\"cli\",\"files\":[";
    List.iteri
      (fun i src ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "{\"path\":\"f%d.go\",\"src\":\"%s\"}" i
             (D.json_escape src)))
      sources;
    Buffer.add_string b "]}";
    Buffer.contents b
  in
  let rq body = { T.rq_path = "/analyse"; rq_headers = []; rq_body = body } in
  let diag_bytes body =
    match Proto.member_raw "run" body with
    | None -> failwith "e-chaos: response has no run member"
    | Some run -> (
        match Proto.member_raw "diagnostics" run with
        | None -> failwith "e-chaos: run has no diagnostics member"
        | Some d -> d)
  in
  let one_shot_diags sources =
    let engine = Gcatch.Passes.engine ~jobs:1 ~registry:(M.create ()) () in
    let r = E.analyse engine ~name:"cli" sources in
    match Proto.member_raw "diagnostics" (E.run_to_json r) with
    | Some d -> d
    | None -> failwith "e-chaos: one-shot run has no diagnostics member"
  in
  let timed_post srv body =
    let t0 = Clock.now_s () in
    let r = Serve.handle_analyse srv (rq body) in
    let dt = Clock.elapsed_since t0 in
    if r.T.status <> 200 then
      failwith (Printf.sprintf "e-chaos: status %d: %s" r.T.status r.T.body);
    (r, dt)
  in
  let snap_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcatch-bench-chaos-%d" (Unix.getpid ()))
  in
  let clear_snap_dir () =
    if Sys.file_exists snap_dir then begin
      Array.iter
        (fun f ->
          try Sys.remove (Filename.concat snap_dir f) with Sys_error _ -> ())
        (Sys.readdir snap_dir);
      try Unix.rmdir snap_dir with Unix.Unix_error _ -> ()
    end
  in
  clear_snap_dir ();
  (* ---- part 1: restart warmth ---- *)
  let nfiles = 20 and per_file = 1000 in
  let sources =
    List.init nfiles (fun i ->
        "package app\n"
        ^ Gocorpus.Filler.generate ~seed:(500 + i) ~target_lines:per_file)
  in
  let loc =
    List.fold_left
      (fun acc s -> acc + List.length (String.split_on_char '\n' s))
      0 sources
  in
  let edited =
    List.mapi
      (fun i s -> if i = nfiles - 1 then s ^ "// restart edit\n" else s)
      sources
  in
  let expect_edit = one_shot_diags edited in
  Printf.printf "app: %d file(s), %d LoC\n\n" nfiles loc;
  (* a deployed gcatchd points --cache-dir at one directory and gets the
     pass-result/per-file disk tiers plus the warm-state snapshot from
     it; the cold control gets neither *)
  let cfg =
    {
      Serve.default_cfg with
      s_jobs = 1;
      s_snapshot_dir = Some snap_dir;
      s_detector =
        { Gcatch.Bmoc.default_config with cache_dir = Some snap_dir };
    }
  in
  (* daemon's first life: analyse, then snapshot on the way down *)
  Gcatch.Solve_cache.reset_memory ();
  let srv_a = Serve.create ~cfg () in
  ignore (timed_post srv_a (body_of sources));
  if not (Serve.save_snapshot srv_a) then failwith "e-chaos: snapshot save";
  (* cold restart control: no durable state, the edit pays a full run *)
  Gcatch.Solve_cache.reset_memory ();
  let srv_cold = Serve.create () in
  let _, cold_edit_s = timed_post srv_cold (body_of edited) in
  (* warm restart: a fresh server loads the snapshot before serving *)
  Gcatch.Solve_cache.reset_memory ();
  let srv_warm = Serve.create ~cfg () in
  if not (Serve.load_snapshot srv_warm) then failwith "e-chaos: snapshot load";
  let r_warm, warm_edit_s = timed_post srv_warm (body_of edited) in
  let restart_identical = diag_bytes r_warm.T.body = expect_edit in
  let restart_speedup = cold_edit_s /. max 1e-9 warm_edit_s in
  Printf.printf
    "one-file edit after restart:\n\
    \  cold restart (no snapshot): %.3fs\n\
    \  warm restart (snapshot reloaded): %.3fs\n\
    \  restart warmth: %.1fx   diagnostics byte-identical: %b\n\n"
    cold_edit_s warm_edit_s restart_speedup restart_identical;
  if not restart_identical then
    failwith "e-chaos: warm-restart diagnostics differ from one-shot";
  if restart_speedup < 5.0 then
    failwith
      (Printf.sprintf "e-chaos: restart warmth %.1fx below 5x" restart_speedup);
  (* ---- part 2: availability under connection chaos ---- *)
  Gcatch.Solve_cache.reset_memory ();
  let soak_cfg =
    {
      Serve.default_cfg with
      s_jobs = 1;
      s_max_queue = 16;
      s_snapshot_dir = Some snap_dir;
      s_quar_degraded = 3;
    }
  in
  let srv = Serve.create ~cfg:soak_cfg () in
  let server =
    match
      T.start ~addr:"127.0.0.1:0" ~post:(Serve.post_handlers srv)
        ~handlers:(Serve.handlers srv) ()
    with
    | Ok s -> s
    | Error e -> failwith ("e-chaos: telemetry start: " ^ e)
  in
  Fun.protect
    ~finally:(fun () ->
      F.clear ();
      T.stop server;
      Gcatch.Solve_cache.set_memory_budget_mb 0;
      clear_snap_dir ())
  @@ fun () ->
  let variants =
    Array.init 4 (fun v ->
        List.init 6 (fun i ->
            "package app\n"
            ^ Gocorpus.Filler.generate ~seed:(600 + (v * 13) + i)
                ~target_lines:250))
  in
  let expect = Array.map one_shot_diags variants in
  let bodies = Array.map body_of variants in
  (* warm all variants and snapshot, so quarantine rebuilds restart warm *)
  Array.iter (fun b -> ignore (timed_post srv b)) bodies;
  if not (Serve.save_snapshot srv) then failwith "e-chaos: soak snapshot";
  (* the storm generator: re-arming the plan resets its nth counters, so
     the same early-occurrence faults keep recurring for the whole soak *)
  let chaos_on = Atomic.make true in
  let chaos_thread =
    Thread.create
      (fun () ->
        let plan =
          match
            F.parse
              "conn.write:1@/analyse!corrupt, conn.read:3!raise, \
               conn.accept:5!stall"
          with
          | Ok p -> p
          | Error e -> failwith ("e-chaos: plan: " ^ e)
        in
        (* 50% duty cycle: armed windows keep the faults recurring,
           clear windows guarantee a backed-off retry can always land *)
        while Atomic.get chaos_on do
          F.set_plan plan;
          Thread.delay 0.05;
          F.clear ();
          Thread.delay 0.05
        done)
      ()
  in
  let clients = 8 and per_client = 12 in
  let total = clients * per_client in
  let lats = Array.make total nan in
  let ok = Array.make total false in
  let ident = Array.make total true in
  let sa = T.self_addr server in
  let threads =
    List.init clients (fun c ->
        Thread.create
          (fun () ->
            for i = 0 to per_client - 1 do
              let v = (c + i) mod Array.length bodies in
              let idx = (c * per_client) + i in
              let t0 = Clock.now_s () in
              (match
                 T.request_retry ~max_attempts:8 ~seed:((c * 31) + i) sa
                   ~meth:"POST" ~path:"/analyse" ~body:bodies.(v) ()
               with
              | Ok (200, body) ->
                  ok.(idx) <- true;
                  ident.(idx) <- diag_bytes body = expect.(v)
              | Ok _ | Error _ -> ok.(idx) <- false);
              lats.(idx) <- Clock.elapsed_since t0
            done)
          ())
  in
  List.iter Thread.join threads;
  Atomic.set chaos_on false;
  Thread.join chaos_thread;
  F.clear ();
  let succeeded = Array.fold_left (fun a b -> if b then a + 1 else a) 0 ok in
  let soak_identical = Array.for_all (fun b -> b) ident in
  let availability = float_of_int succeeded /. float_of_int total in
  let sorted = Array.copy lats in
  Array.sort compare sorted;
  let p95 =
    sorted.(max 0 (min (total - 1) (int_of_float (ceil (0.95 *. float total)) - 1)))
    *. 1000.0
  in
  Printf.printf
    "chaos soak: %d clients x %d requests under recurring conn faults:\n\
    \  eventual successes %d/%d (%.1f%%)  p95 %.1f ms  bytes identical %b\n\n"
    clients per_client succeeded total (availability *. 100.0) p95
    soak_identical;
  (* ---- part 3: solver-fault storm trips the quarantine ---- *)
  let rebuilds0 = M.value (M.counter M.default "serve.engine_rebuilds") in
  (match F.parse "solver:*!raise" with
  | Ok p -> F.set_plan p
  | Error e -> failwith ("e-chaos: plan: " ^ e));
  let leak n =
    Printf.sprintf
      "package p\nfunc L%d() {\n\tch := make(chan int)\n\tgo func() {\n\t\tch \
       <- 1\n\t}()\n}\n"
      n
  in
  for n = 1 to 3 do
    let r = Serve.handle_analyse srv (rq (body_of [ leak n ])) in
    if r.T.status <> 200 then
      failwith (Printf.sprintf "e-chaos: storm request status %d" r.T.status)
  done;
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    M.value (M.counter M.default "serve.engine_rebuilds") <= rebuilds0
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.01
  done;
  F.clear ();
  let rebuilds =
    M.value (M.counter M.default "serve.engine_rebuilds") - rebuilds0
  in
  while Serve.quarantined srv do
    Thread.delay 0.01
  done;
  let r_after, _ = timed_post srv bodies.(0) in
  let after_ok = diag_bytes r_after.T.body = expect.(0) in
  Printf.printf
    "solver storm: engine rebuilds %d  post-rebuild bytes identical: %b\n"
    rebuilds after_ok;
  if rebuilds = 0 then failwith "e-chaos: solver storm tripped no rebuild";
  if not after_ok then
    failwith "e-chaos: post-rebuild diagnostics differ from one-shot";
  if availability < 0.99 then
    failwith
      (Printf.sprintf "e-chaos: availability %.3f below 0.99" availability);
  if not soak_identical then
    failwith "e-chaos: a surviving response differed from one-shot bytes";
  chaos_result :=
    Some
      {
        ch_files = nfiles;
        ch_loc = loc;
        ch_cold_edit_s = cold_edit_s;
        ch_warm_edit_s = warm_edit_s;
        ch_restart_speedup = restart_speedup;
        ch_restart_identical = restart_identical;
        ch_clients = clients;
        ch_requests = total;
        ch_succeeded = succeeded;
        ch_availability = availability;
        ch_p95_ms = p95;
        ch_rebuilds = rebuilds;
        ch_soak_identical = soak_identical;
      }

(* ------------------------------------------------------- json out --- *)


let json_escape = D.json_escape

let write_json path (timings : (string * float) list) =
  let oc = open_out path in
  let experiments =
    String.concat ","
      (List.map
         (fun (n, s) ->
           Printf.sprintf {|{"name":"%s","seconds":%.6f}|} (json_escape n) s)
         timings)
  in
  let parallel =
    match !par_result with
    | None -> "null"
    | Some p ->
        let points =
          String.concat ","
            (List.map
               (fun pt ->
                 let passes =
                   String.concat ","
                     (List.map
                        (fun (n, s) ->
                          Printf.sprintf {|{"name":"%s","seconds":%.6f}|}
                            (json_escape n) s)
                        pt.pp_passes)
                 in
                 Printf.sprintf
                   {|{"jobs":%d,"seconds":%.6f,"passes":[%s]}|} pt.pp_jobs
                   pt.pp_seconds passes)
               p.par_points)
        in
        let seconds_at j =
          match List.find_opt (fun pt -> pt.pp_jobs = j) p.par_points with
          | Some pt -> pt.pp_seconds
          | None -> nan
        in
        let speedup j = seconds_at 1 /. max 1e-9 (seconds_at j) in
        Printf.sprintf
          {|{"app":"%s","loc":%d,"hw_threads":%d,"points":[%s],"speedup_jobs2":%.3f,"speedup_jobs4":%.3f,"diags_identical":%b}|}
          (json_escape p.par_app) p.par_loc
          (Domain.recommended_domain_count ())
          points (speedup 2) (speedup 4) p.par_identical
  in
  let e_incr =
    match !incr_results with
    | [] -> "null"
    | points ->
        Printf.sprintf {|[%s]|}
          (String.concat ","
             (List.map
                (fun p ->
                  Printf.sprintf
                    {|{"app":"%s","cold_s":%.6f,"warm_s":%.6f,"disk_s":%.6f,"hits":%d,"misses":%d}|}
                    (json_escape p.ip_app) p.ip_cold_s p.ip_warm_s p.ip_disk_s
                    p.ip_hits p.ip_misses)
                points))
  in
  let e_robust =
    match !robust_results with
    | [] -> "null"
    | points ->
        Printf.sprintf {|[%s]|}
          (String.concat ","
             (List.map
                (fun p ->
                  Printf.sprintf
                    {|{"app":"%s","bare_s":%.6f,"guarded_s":%.6f,"clean_s":%.6f,"armed_s":%.6f}|}
                    (json_escape p.rp_app) p.rp_bare_s p.rp_guarded_s
                    p.rp_clean_s p.rp_armed_s)
                points))
  in
  let e_fe =
    match !fe_result with
    | None -> "null"
    | Some f ->
        let points =
          String.concat ","
            (List.map
               (fun p ->
                 let stages =
                   String.concat ","
                     (List.map
                        (fun (s, ms) ->
                          Printf.sprintf {|{"stage":"%s","ms":%.3f}|}
                            (json_escape s) ms)
                        p.fp_stages)
                 in
                 Printf.sprintf
                   {|{"jobs":%d,"seconds":%.6f,"stages":[%s]}|} p.fp_jobs
                   p.fp_seconds stages)
               f.fe_points)
        in
        Printf.sprintf
          {|{"files":%d,"loc":%d,"hw_threads":%d,"points":[%s],"cold_s":%.6f,"warm_s":%.6f,"warm_speedup":%.3f,"warm_lex_runs":%d,"diags_identical":%b}|}
          f.fe_files f.fe_loc
          (Domain.recommended_domain_count ())
          points f.fe_cold_s f.fe_warm_s
          (f.fe_cold_s /. max 1e-9 f.fe_warm_s)
          f.fe_warm_lex_runs f.fe_identical
  in
  let e_sched =
    match !sched_result with
    | None -> "null"
    | Some p ->
        Printf.sprintf
          {|{"jobs":4,"outer":%d,"inner":%d,"skew":%d,"barrier_s":%.6f,"sched_s":%.6f,"speedup":%.3f,"tasks_spawned":%d,"tasks_stolen":%d}|}
          p.sp_outer p.sp_inner p.sp_skew p.sp_barrier_s p.sp_sched_s
          (p.sp_barrier_s /. max 1e-9 p.sp_sched_s)
          p.sp_spawned p.sp_stolen
  in
  let e_obs2 =
    match !obs2_result with
    | None -> "null"
    | Some p ->
        Printf.sprintf
          {|{"files":%d,"loc":%d,"jobs":4,"sample_hz":97,"base_s":%.6f,"obs_s":%.6f,"overhead_pct":%.3f,"journal_events":%d,"samples":%d,"diags_identical":%b}|}
          p.ob_files p.ob_loc p.ob_base_s p.ob_obs_s p.ob_overhead_pct
          p.ob_journal_events p.ob_samples p.ob_identical
  in
  let e_serve =
    match !serve_result with
    | None -> "null"
    | Some s ->
        let points =
          String.concat ","
            (List.map
               (fun p ->
                 Printf.sprintf
                   {|{"clients":%d,"requests":%d,"seconds":%.6f,"rps":%.3f,"p50_ms":%.3f,"p95_ms":%.3f}|}
                   p.vp_clients p.vp_requests p.vp_seconds p.vp_rps p.vp_p50_ms
                   p.vp_p95_ms)
               s.sv_points)
        in
        Printf.sprintf
          {|{"files":%d,"loc":%d,"hw_threads":%d,"cold_oneshot_s":%.6f,"first_request_s":%.6f,"steady_s":%.6f,"hot_s":%.6f,"steady_speedup":%.3f,"diags_identical":%b,"points":[%s],"soak":{"requests":%d,"evictions":%d,"max_heap_mb":%.2f,"verdicts_stable":%b}}|}
          s.sv_files s.sv_loc
          (Domain.recommended_domain_count ())
          s.sv_cold_s s.sv_first_req_s s.sv_steady_s s.sv_hot_s
          (s.sv_cold_s /. max 1e-9 s.sv_steady_s)
          s.sv_identical points s.sv_soak_requests s.sv_soak_evictions
          s.sv_soak_heap_mb s.sv_soak_stable
  in
  let e_chaos =
    match !chaos_result with
    | None -> "null"
    | Some c ->
        Printf.sprintf
          {|{"files":%d,"loc":%d,"cold_edit_s":%.6f,"warm_edit_s":%.6f,"restart_speedup":%.3f,"restart_identical":%b,"soak":{"clients":%d,"requests":%d,"succeeded":%d,"availability":%.4f,"p95_ms":%.3f,"rebuilds":%d,"bytes_identical":%b}}|}
          c.ch_files c.ch_loc c.ch_cold_edit_s c.ch_warm_edit_s
          c.ch_restart_speedup c.ch_restart_identical c.ch_clients
          c.ch_requests c.ch_succeeded c.ch_availability c.ch_p95_ms
          c.ch_rebuilds c.ch_soak_identical
  in
  (* the unified registry snapshot: engine stage/cache counters, pass
     runs, bmoc/pathenum/pool/gfix counters accumulated over the run *)
  let metrics =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf {|"%s":%d|} (json_escape k) v)
         (Goobs.Metrics.counters_list Goobs.Metrics.default))
  in
  Printf.fprintf oc
    {|{"schema":"gcatch-bench/9","jobs":%d,"experiments":[%s],"e2_parallel":%s,"e_incr":%s,"e_fe":%s,"e_robust":%s,"e_sched":%s,"e_obs2":%s,"e_serve":%s,"e_chaos":%s,"metrics":{%s}}|}
    !jobs_flag experiments parallel e_incr e_fe e_robust e_sched e_obs2
    e_serve e_chaos metrics;
  output_char oc '
';
  close_out oc;
  Printf.printf "wrote %s
" path

(* ------------------------------------------------------------ main --- *)

(* micro runs first: its per-stage timings stabilize the GC before every
   sample, and that stabilization is priced by the live heap — run last,
   it would measure the macro experiments' artifact caches instead of
   the stages under test (3x slower and noisier estimates). *)
let all =
  [
    ("micro", micro); ("e1", e1); ("e2", e2); ("e2par", e2par); ("e3", e3);
    ("e4", e4); ("e5", e5); ("e6", e6); ("e7", e7); ("e8", e8);
    ("e-incr", eincr); ("e-fe", efe); ("e-robust", erobust);
    ("e-sched", esched); ("e-obs2", eobs2); ("e-serve", eserve);
    ("e-chaos", echaos);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --jobs N and --json FILE, everything else selects experiments *)
  let json_path = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> jobs_flag := j
        | _ ->
            Goobs.Log.error "--jobs expects a positive integer";
            exit 2);
        parse acc rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse acc rest
    | ("--jobs" | "--json") :: [] ->
        Goobs.Log.error "missing argument";
        exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let names = parse [] args in
  let chosen =
    match names with
    | [] -> all
    | names -> List.filter (fun (n, _) -> List.mem n names) all
  in
  let timings =
    List.map
      (fun (n, f) ->
        (* every experiment starts with an empty solve-cache memory tier,
           so its numbers do not depend on which experiments ran before *)
        Gcatch.Solve_cache.reset_memory ();
        let t0 = Clock.now_s () in
        f ();
        (n, Clock.elapsed_since t0))
      chosen
  in
  (match !json_path with None -> () | Some path -> write_json path timings);
  if Lazy.is_val engine then begin
    line ();
    print_endline ("engine " ^ E.stats_str (Lazy.force engine))
  end
